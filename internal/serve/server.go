package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mirza/internal/experiments"
	"mirza/internal/telemetry"
	"mirza/internal/track"
)

// Config tunes a Server. The zero value of every field takes a sane
// default; only Backend is required.
type Config struct {
	// Backend prepares and runs jobs. Required.
	Backend Backend

	// Workers is how many jobs run concurrently (default 2). Each worker
	// runs one job at a time; the experiment backend parallelizes inside
	// a job with its own engine pool, so a small worker count already
	// saturates the machine.
	Workers int

	// QueueDepth bounds the admission queue (default 64). A submission
	// that would exceed it is shed with 429 + Retry-After — the queue is
	// the only place work waits, so memory stays bounded under any load.
	QueueDepth int

	// CacheEntries / CacheBytes bound the content-addressed result cache
	// (defaults 256 entries / 64 MiB).
	CacheEntries int
	CacheBytes   int64

	// Retention is how many completed job records stay pollable before
	// the oldest are forgotten (default 256).
	Retention int

	// DefaultJobTimeout bounds a job that did not ask for a deadline
	// (default 10m); MaxJobTimeout caps what a request may ask for
	// (default 30m).
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration

	// WaitBudget bounds one ?wait=1 long-poll (default 5m). A wait that
	// exceeds it returns 202 with the job still running; the client polls
	// again. It must stay below the HTTP server's write timeout.
	WaitBudget time.Duration

	// DrainBudget is how long Drain lets queued + in-flight work finish
	// before canceling it (default 30s).
	DrainBudget time.Duration

	// Telemetry receives the server's metrics (a fresh registry when nil).
	Telemetry *telemetry.Registry

	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 10 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 30 * time.Minute
	}
	if c.WaitBudget <= 0 {
		c.WaitBudget = 5 * time.Minute
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// jobRec is the server-side record of one submitted job.
type jobRec struct {
	id      string
	key     string
	prep    *Prepared
	timeout time.Duration

	// ctx governs the job's execution; cancel releases it (client
	// abandonment, DELETE, drain cutoff).
	ctx    context.Context
	cancel context.CancelFunc

	// done is closed exactly once, after outcome and state are final.
	done chan struct{}

	mu        sync.Mutex
	state     JobState
	cached    bool // result served from the cache, no execution
	outcome   *Outcome
	waiters   int
	abandonOK bool // cancel the job when the last waiter disconnects
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// addWaiter registers interest from one blocking client.
func (j *jobRec) addWaiter() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

// pin marks the job wanted independently of any connected waiter (an
// async submission coalesced onto it): client disconnects no longer
// cancel it.
func (j *jobRec) pin() {
	j.mu.Lock()
	j.abandonOK = false
	j.mu.Unlock()
}

// stateNow snapshots the state.
func (j *jobRec) stateNow() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Server is the simulation-as-a-service daemon core: admission queue,
// worker pool, result cache, job registry, and the HTTP API over them.
// Create with New, expose Handler via NewHTTPServer, stop with Drain.
type Server struct {
	cfg     Config
	backend Backend
	reg     *telemetry.Registry
	cache   *Cache
	mux     *http.ServeMux
	start   time.Time

	// baseCtx parents every job context; baseCancel is the drain cutoff.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *jobRec
	wg    sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	drained   bool
	drainErr  error
	drainDone chan struct{}
	byID      map[string]*jobRec
	byKey     map[string]*jobRec // in-flight (queued or running) by content key
	doneOrder []string           // completed record ids, oldest first
	seq       int64
	queued    int // admitted, not yet picked up by a worker
	inflight  int // executing right now

	avgRunMS atomic.Int64 // EWMA of job wall-clock, feeds Retry-After

	mSubmitted, mShed, mCacheHits, mCacheMisses *telemetry.Counter
	mCoalesced, mAbandoned                      *telemetry.Counter
	gQueue, gInflight, gCacheEnt, gCacheBytes   *telemetry.Gauge
	hJobMS                                      *telemetry.Histogram
}

// New builds a Server over cfg and starts its workers. The caller owns
// the HTTP lifecycle (Handler + NewHTTPServer) and must call Drain to
// stop.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: Config.Backend is required")
	}
	cfg.setDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Server{
		cfg:     cfg,
		backend: cfg.Backend,
		reg:     reg,
		cache:   NewCache(cfg.CacheEntries, cfg.CacheBytes),
		start:   time.Now(),
		queue:   make(chan *jobRec, cfg.QueueDepth),
		byID:    make(map[string]*jobRec),
		byKey:   make(map[string]*jobRec),

		mSubmitted:   reg.Counter("serve_submitted_total"),
		mShed:        reg.Counter("serve_shed_total"),
		mCacheHits:   reg.Counter("serve_cache_hits_total"),
		mCacheMisses: reg.Counter("serve_cache_misses_total"),
		mCoalesced:   reg.Counter("serve_coalesced_total"),
		mAbandoned:   reg.Counter("serve_abandoned_total"),
		gQueue:       reg.Gauge("serve_queue_depth"),
		gInflight:    reg.Gauge("serve_inflight"),
		gCacheEnt:    reg.Gauge("serve_cache_entries"),
		gCacheBytes:  reg.Gauge("serve_cache_bytes"),
		// 250ms buckets up to 60s; longer jobs clamp into the last bucket.
		hJobMS: reg.WallHistogram("serve_job_ms", 240, 250),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = s.buildMux()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// Manifest snapshots the server's own run record (tool "mirza-serve"):
// static service configuration plus all live metrics. Server manifests
// describe operations, not a deterministic computation.
func (s *Server) Manifest() *telemetry.RunManifest {
	m := telemetry.NewManifest("mirza-serve", map[string]string{
		"workers":       strconv.Itoa(s.cfg.Workers),
		"queue-depth":   strconv.Itoa(s.cfg.QueueDepth),
		"cache-entries": strconv.Itoa(s.cfg.CacheEntries),
		"cache-bytes":   strconv.FormatInt(s.cfg.CacheBytes, 10),
		"retention":     strconv.Itoa(s.cfg.Retention),
	})
	m.FillFromSnapshot(s.reg.Snapshot())
	m.WallClockSeconds = time.Since(s.start).Seconds()
	m.WrittenAt = time.Now().UTC().Format(time.RFC3339)
	return m
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/mitigations", s.handleMitigations)
	mux.HandleFunc("GET /mitigations", s.handleMitigations)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("/metrics", telemetry.PrometheusHandler(s.reg.Snapshot))
	mux.Handle("/manifest", telemetry.ManifestHandler(s.Manifest))
	return mux
}

// ---- admission ----

// ErrShed and ErrDraining are admission refusals: the queue is full
// (shed with 429 + Retry-After) or the server is draining (503). Submit
// returns them; external handlers mounted via Handle map them to the
// same HTTP codes the built-in endpoints use.
var (
	ErrShed     = errors.New("queue full")
	ErrDraining = errors.New("server is draining, not admitting work")
)

// admit either resolves prep from the cache, coalesces it onto an
// identical in-flight job, or enqueues a new job. wait marks a blocking
// submission (its disconnect may cancel the job). The returned flags
// describe which path was taken; err is ErrShed or ErrDraining.
func (s *Server) admit(prep *Prepared, wait bool) (rec *jobRec, cached, coalesced bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, false, ErrDraining
	}
	s.mSubmitted.Inc()

	if b, ok := s.cache.Get(prep.Key); ok {
		s.mCacheHits.Inc()
		rec := s.newRecLocked(prep)
		rec.cached = true
		rec.state = StateDone
		rec.outcome = &Outcome{Manifest: b}
		rec.finished = rec.submitted
		close(rec.done)
		s.retireLocked(rec)
		return rec, true, false, nil
	}

	if cur, ok := s.byKey[prep.Key]; ok {
		s.mCoalesced.Inc()
		if wait {
			cur.addWaiter()
		} else {
			cur.pin()
		}
		return cur, false, true, nil
	}

	if s.queued >= s.cfg.QueueDepth {
		s.mShed.Inc()
		return nil, false, false, ErrShed
	}
	s.mCacheMisses.Inc()

	rec = s.newRecLocked(prep)
	rec.ctx, rec.cancel = context.WithCancel(s.baseCtx)
	rec.abandonOK = wait
	if wait {
		rec.waiters = 1
	}
	s.byID[rec.id] = rec
	s.byKey[rec.key] = rec
	s.queued++
	s.gQueue.Add(1)
	// Guaranteed room: every send happens under s.mu after the
	// s.queued bound check, and s.queued >= len(s.queue) always.
	s.queue <- rec
	return rec, false, false, nil
}

// newRecLocked allocates a record with the next id. Caller holds s.mu.
func (s *Server) newRecLocked(prep *Prepared) *jobRec {
	s.seq++
	timeout := s.cfg.DefaultJobTimeout
	if ms := prep.Req.TimeoutMS; ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	return &jobRec{
		id:        "j" + strconv.FormatInt(s.seq, 10),
		key:       prep.Key,
		prep:      prep,
		timeout:   timeout,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
}

// retireLocked registers a completed record for polling and evicts the
// oldest completed records beyond the retention bound. Caller holds s.mu.
func (s *Server) retireLocked(rec *jobRec) {
	s.byID[rec.id] = rec
	s.doneOrder = append(s.doneOrder, rec.id)
	for len(s.doneOrder) > s.cfg.Retention {
		delete(s.byID, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// ---- execution ----

func (s *Server) worker() {
	defer s.wg.Done()
	for rec := range s.queue {
		s.mu.Lock()
		s.queued--
		s.gQueue.Add(-1)
		s.mu.Unlock()
		if rec.ctx.Err() != nil {
			// Abandoned or cut off while still queued: never started.
			s.finish(rec, &Outcome{
				Canceled: true,
				Err:      "canceled before start: " + rec.ctx.Err().Error(),
			})
			continue
		}
		rec.mu.Lock()
		rec.state = StateRunning
		rec.started = time.Now()
		rec.mu.Unlock()
		s.mu.Lock()
		s.inflight++
		s.mu.Unlock()
		s.gInflight.Add(1)
		out := s.runIsolated(rec)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
		s.gInflight.Add(-1)
		s.finish(rec, out)
	}
}

// runIsolated executes one job under its deadline with panic isolation:
// a panicking backend becomes a structured failed outcome, never a dead
// worker.
func (s *Server) runIsolated(rec *jobRec) (out *Outcome) {
	ctx := rec.ctx
	if rec.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rec.timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			out = &Outcome{
				Err:      fmt.Sprintf("job %s panicked: %v", rec.id, p),
				Panicked: true,
				Stack:    string(debug.Stack()),
			}
		}
	}()
	out = s.backend.Run(ctx, rec.prep)
	if out == nil {
		out = &Outcome{Err: "backend returned no outcome"}
	}
	if out.Err != "" && ctx.Err() != nil {
		out.Canceled = true
	}
	return out
}

// finish publishes a job's terminal outcome: cache insertion (clean
// full-fidelity results only), single-flight release, retention, and
// accounting. It closes rec.done last, so anyone woken by it observes
// the final state.
func (s *Server) finish(rec *jobRec, out *Outcome) {
	now := time.Now()
	s.mu.Lock()
	if out.cacheable() {
		s.cache.Put(rec.key, out.Manifest)
		s.gCacheEnt.Set(int64(s.cache.Len()))
		s.gCacheBytes.Set(s.cache.Bytes())
	}
	if s.byKey[rec.key] == rec {
		delete(s.byKey, rec.key)
	}
	s.retireLocked(rec)
	s.mu.Unlock()

	rec.mu.Lock()
	rec.outcome = out
	rec.state = StateDone
	rec.finished = now
	started := rec.started
	rec.mu.Unlock()
	close(rec.done)
	if rec.cancel != nil {
		rec.cancel()
	}

	status := "ok"
	switch {
	case out.Panicked:
		status = "panicked"
	case out.Canceled:
		status = "canceled"
	case out.Err != "":
		status = "failed"
	case out.Degraded:
		status = "degraded"
	}
	s.reg.Counter("serve_jobs_total", telemetry.L("status", status)).Inc()
	if !started.IsZero() {
		ms := float64(now.Sub(started)) / float64(time.Millisecond)
		s.hJobMS.Observe(ms)
		// EWMA (1/8 weight) feeds the Retry-After estimate.
		old := s.avgRunMS.Load()
		if old == 0 {
			s.avgRunMS.Store(int64(ms) + 1)
		} else {
			s.avgRunMS.Store((7*old + int64(ms) + 1) / 8)
		}
	}
	s.logf("job %s %s (%s)", rec.id, status, rec.key[:min(12, len(rec.key))])
}

// dropWaiter detaches one blocking client. abandoned marks a client
// disconnect: when the last such waiter of an abandonable job leaves,
// the job is canceled and released from single-flight so a later
// identical submission starts fresh.
func (s *Server) dropWaiter(rec *jobRec, abandoned bool) {
	rec.mu.Lock()
	rec.waiters--
	cancel := abandoned && rec.waiters <= 0 && rec.abandonOK && rec.state != StateDone
	rec.mu.Unlock()
	if !cancel {
		return
	}
	s.mAbandoned.Inc()
	s.releaseKey(rec)
	rec.cancel()
}

// releaseKey removes rec from the single-flight index so new identical
// submissions are not coalesced onto a canceled job.
func (s *Server) releaseKey(rec *jobRec) {
	s.mu.Lock()
	if s.byKey[rec.key] == rec {
		delete(s.byKey, rec.key)
	}
	s.mu.Unlock()
}

// Retry-After bounds. The floor matters: with sub-second jobs the EWMA
// (avgRunMS) divided down to seconds rounds to 0, and a 0-second
// Retry-After tells shed clients to retry immediately — they hammer the
// full queue and get re-shed in a tight loop. RFC 9110 allows 0 but the
// only sane backoff is >= 1s, so the estimate is clamped to the floor on
// every path that emits the header (handleSubmit 429, handleReadyz 503).
const (
	retryAfterFloorSeconds = 1
	retryAfterCeilSeconds  = 300
)

// retryAfterSeconds estimates when shed load should come back: the
// current backlog over the worker count, scaled by the average job
// duration. Clamped to [retryAfterFloorSeconds, retryAfterCeilSeconds].
func (s *Server) retryAfterSeconds() int {
	avg := s.avgRunMS.Load()
	if avg <= 0 {
		avg = 1000
	}
	s.mu.Lock()
	depth := s.queued + s.inflight
	s.mu.Unlock()
	secs := int(math.Ceil(float64(avg) / 1000 * (float64(depth)/float64(s.cfg.Workers) + 1)))
	return max(retryAfterFloorSeconds, min(secs, retryAfterCeilSeconds))
}

// ---- drain ----

// Drain stops admitting work, lets queued and in-flight jobs finish
// within budget (<= 0 uses Config.DrainBudget), then cancels whatever is
// left and waits a short grace for workers to unwind. It is idempotent:
// concurrent callers share one drain and its result. After Drain the
// server answers reads (status, results, metrics) but admits nothing.
func (s *Server) Drain(budget time.Duration) error {
	if budget <= 0 {
		budget = s.cfg.DrainBudget
	}
	s.mu.Lock()
	if s.draining {
		ch := s.drainDone
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.drainErr
	}
	s.draining = true
	s.drainDone = make(chan struct{})
	queued, inflight := s.queued, s.inflight
	// Safe: every send happens under s.mu after a draining check.
	close(s.queue)
	s.mu.Unlock()
	s.logf("draining: %d queued, %d in flight, budget %v", queued, inflight, budget)

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-time.After(budget):
		s.logf("drain budget exceeded: canceling remaining jobs")
		s.baseCancel()
		select {
		case <-workersDone:
		case <-time.After(10 * time.Second):
			s.mu.Lock()
			n := s.inflight
			s.mu.Unlock()
			err = fmt.Errorf("serve: drain incomplete: %d jobs ignored cancellation", n)
		}
	}
	s.baseCancel()

	snap := s.reg.Snapshot()
	s.logf("drained: %d jobs run, %d shed, %d cache hits / %d misses",
		snap.CounterTotal("serve_jobs_total"), snap.CounterTotal("serve_shed_total"),
		snap.CounterTotal("serve_cache_hits_total"), snap.CounterTotal("serve_cache_misses_total"))

	s.mu.Lock()
	s.drained = err == nil
	s.drainErr = err
	close(s.drainDone)
	s.mu.Unlock()
	return err
}

// State reports the daemon lifecycle.
func (s *Server) State() ServerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.drained:
		return StateDrained
	case s.draining:
		return StateDraining
	default:
		return StateServing
	}
}

// ---- HTTP handlers ----

const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, errorDoc{Error: "bad request body: " + err.Error()})
		return
	}
	prep, err := s.backend.Prepare(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	wait := boolParam(r, "wait")

	rec, cached, coalesced, err := s.admit(prep, wait)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, errorDoc{Error: ErrDraining.Error()})
		return
	case errors.Is(err, ErrShed):
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests, errorDoc{
			Error:      "queue full: retry later",
			RetryAfter: retry,
		})
		return
	}

	decorate := func(st *Status) {
		st.Cached = st.Cached || cached
		st.Coalesced = coalesced
	}
	if rec.stateNow() == StateDone {
		st := s.status(rec)
		decorate(&st)
		writeJSON(w, http.StatusOK, st)
		return
	}
	if !wait {
		st := s.status(rec)
		decorate(&st)
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	s.waitJob(w, r, rec, decorate)
}

// waitJob blocks until rec finishes, the client disconnects, or the wait
// budget expires. The caller must already hold a waiter registration on
// rec; waitJob releases it on every path.
func (s *Server) waitJob(w http.ResponseWriter, r *http.Request, rec *jobRec, decorate func(*Status)) {
	timer := time.NewTimer(s.cfg.WaitBudget)
	defer timer.Stop()
	select {
	case <-rec.done:
		s.dropWaiter(rec, false)
		st := s.status(rec)
		decorate(&st)
		writeJSON(w, http.StatusOK, st)
	case <-r.Context().Done():
		// Client gone: nothing to write. If it was the job's last
		// interested waiter, the job itself is canceled.
		s.dropWaiter(rec, true)
	case <-timer.C:
		s.dropWaiter(rec, false)
		st := s.status(rec)
		decorate(&st)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *jobRec {
	id := r.PathValue("id")
	s.mu.Lock()
	rec := s.byID[id]
	s.mu.Unlock()
	if rec == nil {
		writeErr(w, http.StatusNotFound, errorDoc{Error: fmt.Sprintf("unknown (or expired) job id %q", id)})
	}
	return rec
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(w, r)
	if rec == nil {
		return
	}
	if boolParam(r, "wait") && rec.stateNow() != StateDone {
		rec.addWaiter()
		s.waitJob(w, r, rec, func(*Status) {})
		return
	}
	writeJSON(w, http.StatusOK, s.status(rec))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(w, r)
	if rec == nil {
		return
	}
	if rec.stateNow() != StateDone && rec.cancel != nil {
		s.releaseKey(rec)
		rec.cancel()
	}
	writeJSON(w, http.StatusAccepted, s.status(rec))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(w, r)
	if rec == nil {
		return
	}
	rec.mu.Lock()
	state, out, cached := rec.state, rec.outcome, rec.cached
	rec.mu.Unlock()
	if state != StateDone || out == nil {
		writeErr(w, http.StatusConflict, errorDoc{Error: fmt.Sprintf("job %s not finished (state %s)", rec.id, state)})
		return
	}
	if !out.ok() {
		writeErr(w, http.StatusInternalServerError, errorDoc{
			Error:    out.Err,
			Panicked: out.Panicked,
			Canceled: out.Canceled,
			Degraded: out.Degraded,
			Stack:    out.Stack,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if cached {
		w.Header().Set("X-Mirza-Cache", "hit")
	} else {
		w.Header().Set("X-Mirza-Cache", "miss")
	}
	if out.Degraded {
		w.Header().Set("X-Mirza-Degraded", "true")
	}
	_, _ = w.Write(out.Manifest)
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(w, r)
	if rec == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errorDoc{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		st := s.status(rec)
		if err := enc.Encode(st); err != nil {
			return
		}
		fl.Flush()
		if st.State == StateDone {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-rec.done:
			// Loop once more to emit the terminal status.
		case <-ticker.C:
		}
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*jobRec, 0, len(s.byID))
	for _, rec := range s.byID {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	statuses := make([]Status, 0, len(recs))
	for _, rec := range recs {
		statuses = append(statuses, s.status(rec))
	}
	// ids are j<seq>: numeric order is submission order.
	sort.Slice(statuses, func(i, j int) bool {
		a, _ := strconv.Atoi(statuses[i].ID[1:])
		b, _ := strconv.Atoi(statuses[j].ID[1:])
		return a < b
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{
		QueueDepth: s.queued,
		QueueCap:   s.cfg.QueueDepth,
		InFlight:   s.inflight,
	}
	s.mu.Unlock()
	h.State = s.State()
	h.CacheLen = s.cache.Len()
	h.UptimeSec = time.Since(s.start).Seconds()
	writeJSON(w, http.StatusOK, h)
}

// mitigationDoc describes one registered mitigation policy in the
// GET /v1/mitigations listing.
type mitigationDoc struct {
	Name     string            `json:"name"`
	Doc      string            `json:"doc"`
	Insecure bool              `json:"insecure,omitempty"`
	Params   []track.ParamSpec `json:"params,omitempty"`
}

// handleMitigations lists every mitigation policy the daemon can build,
// with docs and tunable parameters — the names Request.Mitigations
// accepts. The set is fixed at process start (registration happens in
// package init), so the response is stable for the daemon's lifetime.
func (s *Server) handleMitigations(w http.ResponseWriter, r *http.Request) {
	ds := track.Descriptors()
	docs := make([]mitigationDoc, 0, len(ds))
	for _, d := range ds {
		docs = append(docs, mitigationDoc{
			Name:     d.Name,
			Doc:      d.Doc,
			Insecure: d.Insecure,
			Params:   d.ConfigSchema,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"mitigations": docs})
}

// experimentDoc describes one experiment in the GET /v1/experiments
// listing.
type experimentDoc struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// handleExperiments lists every experiment the daemon can run — the ids
// Request.Experiment accepts, in the paper's order (the same listing as
// mirza-bench -list). The registry is compiled in, so the response is
// stable for the daemon's lifetime.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := experiments.All()
	docs := make([]experimentDoc, 0, len(all))
	for _, e := range all {
		docs = append(docs, experimentDoc{ID: e.ID, Description: e.Description})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": docs})
}

// handleReadyz degrades honestly: not ready while draining or while the
// admission queue is full, so load balancers stop routing before clients
// start seeing 429/503.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, full := s.draining, s.queued >= s.cfg.QueueDepth
	s.mu.Unlock()
	switch {
	case draining:
		writeErr(w, http.StatusServiceUnavailable, errorDoc{Error: "draining"})
	case full:
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusServiceUnavailable, errorDoc{Error: "overloaded: admission queue full", RetryAfter: retry})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

// status snapshots rec as a client-facing document.
func (s *Server) status(rec *jobRec) Status {
	s.mu.Lock()
	qd := s.queued
	s.mu.Unlock()
	now := time.Now()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	st := Status{
		ID:         rec.id,
		State:      rec.state,
		Experiment: rec.prep.Req.Experiment,
		Key:        rec.key,
		Cached:     rec.cached,
		QueueDepth: qd,
	}
	switch {
	case rec.state == StateQueued:
		st.WaitedMS = float64(now.Sub(rec.submitted)) / float64(time.Millisecond)
	case !rec.started.IsZero():
		st.WaitedMS = float64(rec.started.Sub(rec.submitted)) / float64(time.Millisecond)
		end := rec.finished
		if end.IsZero() {
			end = now
		}
		st.RanMS = float64(end.Sub(rec.started)) / float64(time.Millisecond)
	}
	if rec.state == StateDone && rec.outcome != nil {
		out := rec.outcome
		st.Degraded = out.Degraded
		st.Canceled = out.Canceled
		st.Panicked = out.Panicked
		st.Error = out.Err
		if out.ok() {
			st.ResultURL = "/v1/jobs/" + rec.id + "/result"
		}
	}
	return st
}

// ---- extension API ----
//
// These exported hooks let sibling packages compose endpoints over the
// admission queue without reaching into it — internal/sweep mounts
// POST /v1/sweep this way (the handler lives there, not here, to keep
// the dependency direction sweep → serve).

// Handle mounts an additional handler on the daemon's mux. Call it
// during setup, before the HTTP server starts serving; a pattern that
// collides with a built-in route panics, like http.ServeMux does.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Prepare validates req through the backend and resolves its
// content-addressed identity without admitting anything.
func (s *Server) Prepare(req *Request) (*Prepared, error) {
	return s.backend.Prepare(req)
}

// Job is a handle on one submitted job for in-process callers: the same
// waiter semantics a blocking HTTP client gets, without the transport.
type Job struct {
	s        *Server
	rec      *jobRec
	released atomic.Bool

	// Cached and Coalesced report how admission resolved the submission.
	Cached    bool
	Coalesced bool
}

// Submit admits prep as a blocking submission: cache hit, coalescing
// onto an identical in-flight job, or a fresh enqueue. The error is
// ErrShed or ErrDraining. The caller holds a waiter registration and
// must call Release exactly once, on every path.
func (s *Server) Submit(prep *Prepared) (*Job, error) {
	rec, cached, coalesced, err := s.admit(prep, true)
	if err != nil {
		return nil, err
	}
	return &Job{s: s, rec: rec, Cached: cached, Coalesced: coalesced}, nil
}

// Done is closed when the job reaches its terminal state.
func (j *Job) Done() <-chan struct{} { return j.rec.done }

// Outcome returns the terminal outcome (nil until Done is closed).
func (j *Job) Outcome() *Outcome {
	j.rec.mu.Lock()
	defer j.rec.mu.Unlock()
	if j.rec.state != StateDone {
		return nil
	}
	return j.rec.outcome
}

// Status snapshots the job as the polling endpoints would render it.
func (j *Job) Status() Status { return j.s.status(j.rec) }

// Release drops this caller's waiter registration. abandoned marks the
// caller as gone without its result (client disconnect): if it was the
// job's last interested waiter, the job is canceled, exactly as for an
// HTTP long-poller. Safe to call once; extra calls are no-ops.
func (j *Job) Release(abandoned bool) {
	// A cache hit never registered a waiter: nothing to drop.
	if j.released.Swap(true) || j.Cached {
		return
	}
	j.s.dropWaiter(j.rec, abandoned)
}

// ---- small helpers ----

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v != "" && v != "0" && v != "false"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, doc errorDoc) {
	writeJSON(w, code, doc)
}
