package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// parse registers the shared flags on a fresh FlagSet, parses args, and
// resolves.
func parse(t *testing.T, args ...string) (Values, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return c.Resolve()
}

func TestDefaults(t *testing.T) {
	v, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Faults.Empty() {
		t.Error("default fault plan must be empty")
	}
	if v.StallBudget != DefaultStallBudget {
		t.Errorf("stall budget = %v, want %v", v.StallBudget, DefaultStallBudget)
	}
	if v.Parallelism != 0 {
		t.Errorf("parallelism = %d, want 0 (GOMAXPROCS)", v.Parallelism)
	}
	if v.MetricsPath != "" {
		t.Errorf("metrics path = %q, want empty", v.MetricsPath)
	}
	if v.Audit {
		t.Error("audit must default to off")
	}
}

func TestAuditFlag(t *testing.T) {
	v, err := parse(t, "-audit")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Audit {
		t.Error("-audit did not enable auditing")
	}
}

func TestValidValues(t *testing.T) {
	v, err := parse(t,
		"-faults", "seed=7,alertdrop=0.5",
		"-stall-budget", "30s",
		"-j", "4",
		"-metrics", "/tmp/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if v.Faults.Empty() {
		t.Error("fault plan should be non-empty")
	}
	if v.StallBudget != 30*time.Second {
		t.Errorf("stall budget = %v", v.StallBudget)
	}
	if v.Parallelism != 4 {
		t.Errorf("parallelism = %d", v.Parallelism)
	}
	if v.MetricsPath != "/tmp/manifest.json" {
		t.Errorf("metrics path = %q", v.MetricsPath)
	}
}

func TestMalformedFaultPlans(t *testing.T) {
	for _, plan := range []string{
		"alertdrop",          // no value
		"alertdrop=nope",     // non-numeric
		"alertdrop=1.5",      // probability out of range
		"unknownknob=3",      // unknown key
		"seed=7,,alertdrop=", // empty terms
	} {
		if _, err := parse(t, "-faults", plan); err == nil {
			t.Errorf("plan %q: expected an error", plan)
		} else if !strings.Contains(err.Error(), "-faults") {
			t.Errorf("plan %q: error %v does not name the flag", plan, err)
		}
	}
}

func TestValidateListen(t *testing.T) {
	tests := []struct {
		addr    string
		wantErr string // substring of the error ("" = no error)
		warn    bool   // expect a privileged-port warning
	}{
		{addr: "", wantErr: "host:port"},
		{addr: ":0"},
		{addr: ":6060"},
		{addr: "127.0.0.1:6060"},
		{addr: "[::1]:6060"},
		{addr: "0.0.0.0:65535"},
		{addr: ":80", warn: true},
		{addr: "localhost:1", warn: true},
		{addr: "localhost:http", wantErr: "numeric"},
		{addr: ":70000", wantErr: "out of range"},
		{addr: ":-1", wantErr: "out of range"},
		{addr: "6060", wantErr: "host:port"},
		{addr: "host:port:extra", wantErr: "host:port"},
	}
	for _, tc := range tests {
		warn, err := ValidateListen(tc.addr)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ValidateListen(%q) err = %v, want substring %q", tc.addr, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ValidateListen(%q) unexpected error: %v", tc.addr, err)
			continue
		}
		if (warn != "") != tc.warn {
			t.Errorf("ValidateListen(%q) warning = %q, want warning=%v", tc.addr, warn, tc.warn)
		}
	}
}

func TestBadValues(t *testing.T) {
	if _, err := parse(t, "-j", "-2"); err == nil || !strings.Contains(err.Error(), "-j") {
		t.Errorf("negative -j: err = %v, want an error naming the flag", err)
	}
	if _, err := parse(t, "-stall-budget", "-5s"); err == nil || !strings.Contains(err.Error(), "-stall-budget") {
		t.Errorf("negative -stall-budget: err = %v, want an error naming the flag", err)
	}
}

func TestTraceFlag(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.trace")
	b := filepath.Join(dir, "b.ndjson")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte("0x0 READ 0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	v, err := parse(t, "-trace", a+" , "+b)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.TraceFiles) != 2 || v.TraceFiles[0] != a || v.TraceFiles[1] != b {
		t.Errorf("TraceFiles = %v, want [%s %s]", v.TraceFiles, a, b)
	}
	if v, err := parse(t); err != nil || v.TraceFiles != nil {
		t.Errorf("default TraceFiles = %v (err %v), want none", v.TraceFiles, err)
	}
	if _, err := parse(t, "-trace", filepath.Join(dir, "missing.trace")); err == nil ||
		!strings.Contains(err.Error(), "-trace") {
		t.Errorf("missing file: err = %v, want an error naming the flag", err)
	}
	if _, err := parse(t, "-trace", dir); err == nil ||
		!strings.Contains(err.Error(), "directory") {
		t.Errorf("directory: err = %v, want a directory error", err)
	}
}

func TestTenantsFlag(t *testing.T) {
	v, err := parse(t, "-tenants", "attack=edge : 2 + xz")
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenants != "attack=edge:2+xz:1" {
		t.Errorf("Tenants = %q, want the canonical spec", v.Tenants)
	}
	if v, err := parse(t); err != nil || v.Tenants != "" {
		t.Errorf("default Tenants = %q (err %v), want empty", v.Tenants, err)
	}
	if _, err := parse(t, "-tenants", "no-such-workload:2"); err == nil ||
		!strings.Contains(err.Error(), "-tenants") {
		t.Errorf("bad spec: err = %v, want an error naming the flag", err)
	}
}

func TestParseMitigation(t *testing.T) {
	cases := []struct {
		in        string
		name      string
		overrides map[string]string
		wantErr   string // substring; "" means valid
	}{
		{in: "mirza", name: "mirza"},
		{in: "  prac  ", name: "prac"},
		{in: "prac:ath=400", name: "prac", overrides: map[string]string{"ath": "400"}},
		{in: "mirza:fth=1500,window=12,queue=8", name: "mirza",
			overrides: map[string]string{"fth": "1500", "window": "12", "queue": "8"}},
		{in: " graphene : threshold = 250 , entries = 64 ", name: "graphene",
			overrides: map[string]string{"threshold": "250", "entries": "64"}},
		{in: "mopac:p=0.25", name: "mopac", overrides: map[string]string{"p": "0.25"}},
		// A value may itself contain '=' (split happens at the first one).
		{in: "x:k=a=b", name: "x", overrides: map[string]string{"k": "a=b"}},
		{in: "", wantErr: "policy name required"},
		{in: ":ath=400", wantErr: "policy name required"},
		{in: "prac:", wantErr: "empty key=val entry"},
		{in: "prac:ath", wantErr: "not key=val"},
		{in: "prac:ath=400,,window=4", wantErr: "empty key=val entry"},
		{in: "prac:=400", wantErr: "empty key or value"},
		{in: "prac:ath=", wantErr: "empty key or value"},
		{in: "prac:ath=400,ath=500", wantErr: "duplicate key"},
	}
	for _, tc := range cases {
		name, overrides, err := ParseMitigation(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseMitigation(%q): err = %v, want substring %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMitigation(%q): unexpected error %v", tc.in, err)
			continue
		}
		if name != tc.name {
			t.Errorf("ParseMitigation(%q): name = %q, want %q", tc.in, name, tc.name)
		}
		if len(overrides) != len(tc.overrides) {
			t.Errorf("ParseMitigation(%q): overrides = %v, want %v", tc.in, overrides, tc.overrides)
			continue
		}
		for k, want := range tc.overrides {
			if got := overrides[k]; got != want {
				t.Errorf("ParseMitigation(%q): overrides[%q] = %q, want %q", tc.in, k, got, want)
			}
		}
	}
}
