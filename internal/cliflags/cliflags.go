// Package cliflags registers and validates the command-line flags shared
// by cmd/mirza-sim and cmd/mirza-bench: the fault-injection plan
// (-faults), the livelock watchdog budget (-stall-budget), the job-engine
// worker count (-j), and the telemetry manifest path (-metrics). Keeping
// the parsing in one place keeps the two binaries' flag semantics — and
// their error messages for malformed input — identical.
package cliflags

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"mirza/internal/fault"
	"mirza/internal/tenant"
)

// DefaultStallBudget is the watchdog budget both commands default to.
const DefaultStallBudget = 2 * time.Minute

// Common holds the raw values of the shared flags as registered on a
// FlagSet. Call Resolve after flag parsing to validate them.
type Common struct {
	faults  *string
	stall   *time.Duration
	j       *int
	metrics *string
	audit   *bool
	trace   *string
	tenants *string
}

// Register installs the shared flags on fs and returns the handle to
// resolve them after fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	return &Common{
		faults: fs.String("faults", "",
			"fault-injection plan, e.g. seed=7,bitflip=1e-5,alertdrop=0.2 (see internal/fault)"),
		stall: fs.Duration("stall-budget", DefaultStallBudget,
			"abort a simulation whose event time stops advancing for this long (0 = disabled)"),
		j: fs.Int("j", 0,
			"worker count for the job engine (0 = GOMAXPROCS; 1 = strictly sequential)"),
		metrics: fs.String("metrics", "",
			"write a telemetry RunManifest JSON snapshot to this path at exit"),
		audit: fs.Bool("audit", false,
			"attach the DDR5 protocol auditor to every simulated channel and fail on violations (see internal/audit)"),
		trace: fs.String("trace", "",
			"comma-separated recorded trace files to replay (DRAMSim3 'addr cmd cycle' or NDJSON; see internal/tracefile)"),
		tenants: fs.String("tenants", "",
			"multi-tenant scenario spec, '+'-separated name[:cores] with one attack=edge|double entry, e.g. "+tenant.DefaultSpec),
	}
}

// Values are the validated shared settings.
type Values struct {
	Faults      fault.Plan
	StallBudget time.Duration
	Parallelism int
	MetricsPath string
	Audit       bool

	// TraceFiles are the -trace paths, split and verified to exist at
	// flag-resolution time so a typo fails before any simulation starts.
	TraceFiles []string

	// Tenants is the -tenants spec in canonical form (tenant.Parse then
	// String), or "" when the flag was not given.
	Tenants string
}

// ParseMitigation splits a -mitigation value of the form
// "name[:key=val,key=val,...]" — shared by mirza-sim and mirza-attack —
// into the policy name and its parameter overrides. Only the syntax is
// validated here; the name and the override keys/values are checked against
// the mitigation registry by track.Build, so both binaries report unknown
// policies and malformed parameters identically.
func ParseMitigation(s string) (name string, overrides map[string]string, err error) {
	name = s
	rest := ""
	hasRest := false
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, rest, hasRest = s[:i], s[i+1:], true
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("-mitigation: policy name required (name[:key=val,...]), got %q", s)
	}
	if !hasRest {
		return name, nil, nil
	}
	overrides = map[string]string{}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return "", nil, fmt.Errorf("-mitigation %q: empty key=val entry", s)
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("-mitigation %q: %q is not key=val", s, part)
		}
		k, v := strings.TrimSpace(part[:eq]), strings.TrimSpace(part[eq+1:])
		if k == "" || v == "" {
			return "", nil, fmt.Errorf("-mitigation %q: %q has an empty key or value", s, part)
		}
		if _, dup := overrides[k]; dup {
			return "", nil, fmt.Errorf("-mitigation %q: duplicate key %q", s, k)
		}
		overrides[k] = v
	}
	if len(overrides) == 0 {
		return "", nil, fmt.Errorf("-mitigation %q: expected key=val after %q:", s, name)
	}
	return name, overrides, nil
}

// ValidateListen validates a -listen address shared by mirza-bench and
// mirza-serve: it must be a host:port pair with a numeric port in
// [0, 65535] (named service ports are rejected so both binaries fail the
// same way on the same inputs). An empty host binds every interface; port
// 0 asks the kernel for an ephemeral port. The returned warning is
// non-empty for a privileged port (1-1023), which usually needs elevated
// permissions and is almost never what a local metrics endpoint wants.
func ValidateListen(addr string) (warning string, err error) {
	if addr == "" {
		return "", fmt.Errorf("-listen: address must be host:port (e.g. 127.0.0.1:6060 or :0), got empty string")
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-listen: %q is not host:port: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("-listen: port %q must be numeric (named service ports are not supported)", portStr)
	}
	if port < 0 || port > 65535 {
		return "", fmt.Errorf("-listen: port %d out of range [0, 65535]", port)
	}
	if port > 0 && port < 1024 {
		warning = fmt.Sprintf("-listen: port %d is privileged (< 1024); binding usually requires elevated permissions", port)
	}
	_ = host // empty host (":6060") is valid: bind all interfaces
	return warning, nil
}

// Resolve validates the parsed flag values. It must be called after the
// owning FlagSet has been parsed.
func (c *Common) Resolve() (Values, error) {
	plan, err := fault.Parse(*c.faults)
	if err != nil {
		return Values{}, fmt.Errorf("-faults: %w", err)
	}
	if *c.stall < 0 {
		return Values{}, fmt.Errorf("-stall-budget: must be >= 0, got %v", *c.stall)
	}
	if *c.j < 0 {
		return Values{}, fmt.Errorf("-j: worker count must be >= 0, got %d", *c.j)
	}
	var traces []string
	for _, p := range strings.Split(*c.trace, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if fi, err := os.Stat(p); err != nil {
			return Values{}, fmt.Errorf("-trace: %w", err)
		} else if fi.IsDir() {
			return Values{}, fmt.Errorf("-trace: %s is a directory, want a trace file", p)
		}
		traces = append(traces, p)
	}
	tenants := ""
	if *c.tenants != "" {
		spec, err := tenant.Parse(*c.tenants)
		if err != nil {
			return Values{}, fmt.Errorf("-tenants: %w", err)
		}
		tenants = spec.String()
	}
	return Values{
		Faults:      plan,
		StallBudget: *c.stall,
		Parallelism: *c.j,
		MetricsPath: *c.metrics,
		Audit:       *c.audit,
		TraceFiles:  traces,
		Tenants:     tenants,
	}, nil
}
