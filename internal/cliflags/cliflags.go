// Package cliflags registers and validates the command-line flags shared
// by cmd/mirza-sim and cmd/mirza-bench: the fault-injection plan
// (-faults), the livelock watchdog budget (-stall-budget), the job-engine
// worker count (-j), and the telemetry manifest path (-metrics). Keeping
// the parsing in one place keeps the two binaries' flag semantics — and
// their error messages for malformed input — identical.
package cliflags

import (
	"flag"
	"fmt"
	"net"
	"strconv"
	"time"

	"mirza/internal/fault"
)

// DefaultStallBudget is the watchdog budget both commands default to.
const DefaultStallBudget = 2 * time.Minute

// Common holds the raw values of the shared flags as registered on a
// FlagSet. Call Resolve after flag parsing to validate them.
type Common struct {
	faults  *string
	stall   *time.Duration
	j       *int
	metrics *string
	audit   *bool
}

// Register installs the shared flags on fs and returns the handle to
// resolve them after fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	return &Common{
		faults: fs.String("faults", "",
			"fault-injection plan, e.g. seed=7,bitflip=1e-5,alertdrop=0.2 (see internal/fault)"),
		stall: fs.Duration("stall-budget", DefaultStallBudget,
			"abort a simulation whose event time stops advancing for this long (0 = disabled)"),
		j: fs.Int("j", 0,
			"worker count for the job engine (0 = GOMAXPROCS; 1 = strictly sequential)"),
		metrics: fs.String("metrics", "",
			"write a telemetry RunManifest JSON snapshot to this path at exit"),
		audit: fs.Bool("audit", false,
			"attach the DDR5 protocol auditor to every simulated channel and fail on violations (see internal/audit)"),
	}
}

// Values are the validated shared settings.
type Values struct {
	Faults      fault.Plan
	StallBudget time.Duration
	Parallelism int
	MetricsPath string
	Audit       bool
}

// ValidateListen validates a -listen address shared by mirza-bench and
// mirza-serve: it must be a host:port pair with a numeric port in
// [0, 65535] (named service ports are rejected so both binaries fail the
// same way on the same inputs). An empty host binds every interface; port
// 0 asks the kernel for an ephemeral port. The returned warning is
// non-empty for a privileged port (1-1023), which usually needs elevated
// permissions and is almost never what a local metrics endpoint wants.
func ValidateListen(addr string) (warning string, err error) {
	if addr == "" {
		return "", fmt.Errorf("-listen: address must be host:port (e.g. 127.0.0.1:6060 or :0), got empty string")
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-listen: %q is not host:port: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("-listen: port %q must be numeric (named service ports are not supported)", portStr)
	}
	if port < 0 || port > 65535 {
		return "", fmt.Errorf("-listen: port %d out of range [0, 65535]", port)
	}
	if port > 0 && port < 1024 {
		warning = fmt.Sprintf("-listen: port %d is privileged (< 1024); binding usually requires elevated permissions", port)
	}
	_ = host // empty host (":6060") is valid: bind all interfaces
	return warning, nil
}

// Resolve validates the parsed flag values. It must be called after the
// owning FlagSet has been parsed.
func (c *Common) Resolve() (Values, error) {
	plan, err := fault.Parse(*c.faults)
	if err != nil {
		return Values{}, fmt.Errorf("-faults: %w", err)
	}
	if *c.stall < 0 {
		return Values{}, fmt.Errorf("-stall-budget: must be >= 0, got %v", *c.stall)
	}
	if *c.j < 0 {
		return Values{}, fmt.Errorf("-j: worker count must be >= 0, got %d", *c.j)
	}
	return Values{
		Faults:      plan,
		StallBudget: *c.stall,
		Parallelism: *c.j,
		MetricsPath: *c.metrics,
		Audit:       *c.audit,
	}, nil
}
