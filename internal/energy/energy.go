// Package energy models the refresh-energy accounting used throughout the
// paper's evaluation: the relative refresh power overhead of mitigative
// victim refreshes (Figures 3 and 13) and the refresh cannibalization of
// proactive in-DRAM mitigation performed under REF (Tables II and XII).
package energy

import "mirza/internal/dram"

// RefreshPowerOverhead returns the relative increase in DRAM refresh power
// due to mitigations, computed as the paper does (Section II.F): the ratio
// of rows undergoing victim refreshes to rows undergoing demand refresh.
func RefreshPowerOverhead(victimRows, demandRows int64) float64 {
	if demandRows == 0 {
		return 0
	}
	return float64(victimRows) / float64(demandRows)
}

// MitigationPowerForRate returns the refresh power overhead implied by a
// mitigation rate of one aggressor (victims victim-rows) every actsPerMitigation
// activations, for a bank receiving actsPerTREFW activations per refresh
// window with rowsPerBank rows of demand refresh.
func MitigationPowerForRate(actsPerTREFW float64, actsPerMitigation, victims, rowsPerBank int) float64 {
	if actsPerMitigation <= 0 || rowsPerBank <= 0 {
		return 0
	}
	victimRows := actsPerTREFW / float64(actsPerMitigation) * float64(victims)
	return victimRows / float64(rowsPerBank)
}

// Cannibalization returns the fraction of REF execution time consumed when
// one aggressor-row mitigation (tMitigation) is performed every
// refsPerMitigation REF commands (each of duration tRFC). Table II: one
// mitigation per REF consumes 68% of the REF time; one per 8 REF, 8.5%.
func Cannibalization(t dram.Timing, refsPerMitigation float64) float64 {
	if refsPerMitigation <= 0 {
		return 0
	}
	return float64(t.TMitigation) / (float64(t.TRFC) * refsPerMitigation)
}

// SRAMPower estimates the power draw of MIRZA's SRAM structures relative to
// total DRAM chip power, following the paper's CACTI-based estimate
// (Section VIII.B): about 0.6mW of structure power against 240mW chip
// power, i.e. 0.25%.
type SRAMPower struct {
	StructureMilliwatts float64 // per chip
	ChipMilliwatts      float64 // total DRAM chip power
}

// DefaultSRAMPower returns the paper's estimates.
func DefaultSRAMPower() SRAMPower {
	return SRAMPower{StructureMilliwatts: 0.6, ChipMilliwatts: 240}
}

// RelativeOverhead returns structure power as a fraction of chip power.
func (p SRAMPower) RelativeOverhead() float64 {
	if p.ChipMilliwatts == 0 {
		return 0
	}
	return p.StructureMilliwatts / p.ChipMilliwatts
}
