package energy

import (
	"math"
	"testing"

	"mirza/internal/dram"
)

func TestRefreshPowerOverhead(t *testing.T) {
	if got := RefreshPowerOverhead(0, 1000); got != 0 {
		t.Errorf("no victims => 0, got %v", got)
	}
	if got := RefreshPowerOverhead(100, 1000); got != 0.1 {
		t.Errorf("got %v, want 0.1", got)
	}
	if got := RefreshPowerOverhead(5, 0); got != 0 {
		t.Errorf("zero demand must not divide, got %v", got)
	}
}

func TestCannibalizationMatchesTableII(t *testing.T) {
	tm := dram.DDR5()
	// 280ns mitigation vs 410ns REF: 68/34/17/8.5% for 1/2/4/8 REF.
	cases := map[float64]float64{1: 0.683, 2: 0.341, 4: 0.171, 8: 0.0854}
	for refs, want := range cases {
		got := Cannibalization(tm, refs)
		if math.Abs(got-want) > 0.002 {
			t.Errorf("refs=%v: %v, want ~%v", refs, got, want)
		}
	}
	if Cannibalization(tm, 0) != 0 {
		t.Error("zero rate must be 0")
	}
	// Table XII: TRR at 1 per 4 REF = 17%, MINT at 1 per 3 REF = 23%.
	if got := Cannibalization(tm, 3); math.Abs(got-0.2276) > 0.003 {
		t.Errorf("MINT cannibalization %v, want ~22.8%%", got)
	}
}

func TestMitigationPowerForRate(t *testing.T) {
	// One mitigation (4 victims) per 24 ACTs, 100K ACTs per tREFW,
	// 128K rows demand refresh: 100000/24*4/131072 = 12.7%.
	got := MitigationPowerForRate(100000, 24, 4, 128*1024)
	if math.Abs(got-0.127) > 0.005 {
		t.Errorf("got %v, want ~0.127", got)
	}
	if MitigationPowerForRate(1000, 0, 4, 128) != 0 {
		t.Error("zero rate must be 0")
	}
}

func TestSRAMPower(t *testing.T) {
	p := DefaultSRAMPower()
	if r := p.RelativeOverhead(); math.Abs(r-0.0025) > 0.0001 {
		t.Errorf("relative overhead %v, want 0.25%% (Section VIII.B)", r)
	}
	if (SRAMPower{}).RelativeOverhead() != 0 {
		t.Error("zero chip power must not divide")
	}
}
