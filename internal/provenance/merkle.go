// Package provenance chains run manifests into a tamper-evident,
// append-only ledger: a Merkle tree over the canonical manifest bytes of
// every recorded run, with inclusion proofs, so any table or figure in
// the repository can be proven back to the exact configuration hash,
// seed and fault plan that produced it (ROADMAP: fleet-scale sweeps with
// tamper-evident provenance; mirza-sweep is the CLI over this package).
//
// The hashing follows the RFC 6962 (Certificate Transparency) tree:
//
//	leaf  = SHA-256(0x00 || record bytes)
//	node  = SHA-256(0x01 || left || right)
//	MTH(n leaves) splits at the largest power of two < n
//
// The domain-separating prefixes make a leaf unforgeable as an interior
// node (and vice versa), so an attacker cannot splice a fake subtree into
// a recorded ledger without changing the root.
//
// A ledger is a directory (see Ledger) holding the records themselves
// content-addressed by leaf hash, an append-only NDJSON entry log fixing
// their order, and a head file carrying the current Merkle root chained
// to the previous one. Verification recomputes everything from the bytes
// on disk: a single flipped bit in any recorded manifest, entry line or
// head field is detected.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the size of every hash in the tree (SHA-256).
const HashSize = sha256.Size

// Hash is one tree hash (a leaf or an interior node).
type Hash [HashSize]byte

// String returns the lowercase hex rendering used in ledger files.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses the hex rendering produced by Hash.String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != HashSize {
		return h, fmt.Errorf("provenance: %q is not a %d-byte hex hash", s, HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// Domain-separation prefixes (RFC 6962 §2.1).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one record's bytes as a tree leaf.
func LeafHash(record []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(record)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes into their parent.
func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Root computes the Merkle tree head over leaves in order. The empty
// tree hashes to SHA-256 of the empty string (RFC 6962).
func Root(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return sha256.Sum256(nil)
	}
	return subRoot(leaves)
}

func subRoot(leaves []Hash) Hash {
	if len(leaves) == 1 {
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(subRoot(leaves[:k]), subRoot(leaves[k:]))
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2): the RFC 6962 left-subtree width.
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// Proof is an inclusion proof: the audit path from a leaf to the root,
// ordered leaf-side first. Together with the leaf index and the tree
// size it reconstructs the root from the leaf alone.
type Proof []Hash

// Prove returns the inclusion proof for leaf index m in the tree over
// leaves.
func Prove(leaves []Hash, m int) (Proof, error) {
	if m < 0 || m >= len(leaves) {
		return nil, fmt.Errorf("provenance: leaf index %d out of range [0, %d)", m, len(leaves))
	}
	return provePath(leaves, m), nil
}

func provePath(leaves []Hash, m int) Proof {
	if len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if m < k {
		return append(provePath(leaves[:k], m), subRoot(leaves[k:]))
	}
	return append(provePath(leaves[k:], m-k), subRoot(leaves[:k]))
}

// VerifyInclusion checks that leaf sits at index m of the size-n tree
// whose head is root, using the audit path proof. It returns nil exactly
// when the proof reconstructs root.
func VerifyInclusion(root, leaf Hash, m, n int, proof Proof) error {
	if n <= 0 {
		return fmt.Errorf("provenance: inclusion in an empty tree is unprovable")
	}
	if m < 0 || m >= n {
		return fmt.Errorf("provenance: leaf index %d out of range [0, %d)", m, n)
	}
	got, err := pathRoot(leaf, m, n, proof)
	if err != nil {
		return err
	}
	if got != root {
		return fmt.Errorf("provenance: inclusion proof for leaf %d/%d reconstructs root %s, want %s",
			m, n, got, root)
	}
	return nil
}

// pathRoot recomputes the root from a leaf and its audit path, mirroring
// the recursive structure of subRoot/provePath.
func pathRoot(leaf Hash, m, n int, proof Proof) (Hash, error) {
	if n == 1 {
		if len(proof) != 0 {
			return Hash{}, fmt.Errorf("provenance: proof has %d extra step(s)", len(proof))
		}
		return leaf, nil
	}
	if len(proof) == 0 {
		return Hash{}, fmt.Errorf("provenance: proof too short for a %d-leaf tree", n)
	}
	last, rest := proof[len(proof)-1], proof[:len(proof)-1]
	k := splitPoint(n)
	if m < k {
		sub, err := pathRoot(leaf, m, k, rest)
		if err != nil {
			return Hash{}, err
		}
		return nodeHash(sub, last), nil
	}
	sub, err := pathRoot(leaf, m-k, n-k, rest)
	if err != nil {
		return Hash{}, err
	}
	return nodeHash(last, sub), nil
}
