package provenance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Ledger file layout inside the ledger directory:
//
//	entries.ndjson     append-only: one Entry JSON per line, seq order
//	manifests/<leaf>.json   record bytes, content-addressed by leaf hash
//	HEAD.json          Head: tree size + Merkle root, chained to the
//	                   previous root (the "signed root" analogue)
//
// Every file is a pure function of the appended (record, key, shard)
// sequence — no timestamps, no absolute paths — so two ledgers built
// from the same shard results are byte-identical, whatever worker count
// or machine produced them.
const (
	entriesFile  = "entries.ndjson"
	headFile     = "HEAD.json"
	manifestsDir = "manifests"
)

// LedgerSchemaVersion identifies the on-disk layout.
const LedgerSchemaVersion = 1

// Entry is one appended record: the ledger's unit of provenance.
type Entry struct {
	// Seq is the append index (0-based): the record's leaf index in the
	// Merkle tree.
	Seq int `json:"seq"`

	// Key is the content-addressed run identity the record answers for
	// (telemetry.ConfigHash(config) + "-" + seed for sweep shards). A key
	// appears at most once; re-appending it with identical bytes is a
	// no-op and with different bytes an error — history is append-only.
	Key string `json:"key"`

	// Leaf is the hex leaf hash of the record bytes; the record itself
	// lives in manifests/<leaf>.json.
	Leaf string `json:"leaf"`

	// Shard is the human-readable shard identity ("fig3/w=xz/m=prac/s=3").
	Shard string `json:"shard,omitempty"`
}

// Head is the ledger head: the Merkle root over all entries in seq
// order, chained to the root it replaced.
type Head struct {
	SchemaVersion int    `json:"schema_version"`
	Size          int    `json:"size"`
	Root          string `json:"root"`

	// PrevRoot is the root the previous Sync recorded (empty for the
	// first). The chain of heads is what makes silent truncation — not
	// just mutation — detectable by anyone who recorded an older root.
	PrevRoot string `json:"prev_root,omitempty"`
}

// Ledger is an append-only Merkle ledger rooted at a directory. It is
// not safe for concurrent use; one writer owns a ledger directory.
type Ledger struct {
	dir     string
	entries []Entry
	leaves  []Hash
	byKey   map[string]int
	head    Head // as last synced (zero if never)
	dirty   bool
}

// Open opens the ledger at dir, creating the directory structure on
// first use. Existing entries are loaded and lightly validated (seq
// contiguity, well-formed hashes, unique keys); use Verify for the full
// bytes-on-disk check.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(filepath.Join(dir, manifestsDir), 0o755); err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	l := &Ledger{dir: dir, byKey: make(map[string]int)}
	entries, err := readEntries(filepath.Join(dir, entriesFile))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.Seq != len(l.entries) {
			return nil, fmt.Errorf("provenance: %s: entry %q has seq %d, want %d (ledger is append-only)",
				dir, e.Key, e.Seq, len(l.entries))
		}
		if _, dup := l.byKey[e.Key]; dup {
			return nil, fmt.Errorf("provenance: %s: key %q recorded twice", dir, e.Key)
		}
		leaf, err := ParseHash(e.Leaf)
		if err != nil {
			return nil, fmt.Errorf("provenance: %s: entry %d: %w", dir, e.Seq, err)
		}
		l.byKey[e.Key] = e.Seq
		l.entries = append(l.entries, e)
		l.leaves = append(l.leaves, leaf)
	}
	if head, err := readHead(filepath.Join(dir, headFile)); err == nil {
		l.head = head
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return l, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Len returns the number of recorded entries.
func (l *Ledger) Len() int { return len(l.entries) }

// Entries returns the recorded entries in seq order (shared slice; do
// not mutate).
func (l *Ledger) Entries() []Entry { return l.entries }

// Lookup finds the entry recorded for key.
func (l *Ledger) Lookup(key string) (Entry, bool) {
	i, ok := l.byKey[key]
	if !ok {
		return Entry{}, false
	}
	return l.entries[i], true
}

// Root returns the current Merkle root over all entries.
func (l *Ledger) Root() Hash { return Root(l.leaves) }

// Record returns the raw record bytes of entry seq.
func (l *Ledger) Record(seq int) ([]byte, error) {
	if seq < 0 || seq >= len(l.entries) {
		return nil, fmt.Errorf("provenance: seq %d out of range [0, %d)", seq, len(l.entries))
	}
	return os.ReadFile(l.manifestPath(l.entries[seq].Leaf))
}

func (l *Ledger) manifestPath(leafHex string) string {
	return filepath.Join(l.dir, manifestsDir, leafHex+".json")
}

// Append records one (record, key, shard). Appending a key already in
// the ledger with byte-identical record bytes returns the existing entry
// with added=false; with different bytes it fails — the ledger refuses
// to rewrite history. Call Sync to publish the new head.
func (l *Ledger) Append(record []byte, key, shard string) (Entry, bool, error) {
	if key == "" {
		return Entry{}, false, fmt.Errorf("provenance: empty entry key")
	}
	leaf := LeafHash(record)
	if i, ok := l.byKey[key]; ok {
		if l.entries[i].Leaf != leaf.String() {
			return Entry{}, false, fmt.Errorf(
				"provenance: key %s already recorded at seq %d with leaf %s; refusing to append different bytes (leaf %s) — the ledger is append-only",
				key, i, l.entries[i].Leaf, leaf)
		}
		return l.entries[i], false, nil
	}
	e := Entry{Seq: len(l.entries), Key: key, Leaf: leaf.String(), Shard: shard}

	// Record bytes first (content-addressed, so double-writes are safe),
	// then the entry line: a crash between the two leaves a readable
	// ledger plus an orphan record, never an entry without its record.
	path := l.manifestPath(e.Leaf)
	if prev, err := os.ReadFile(path); err == nil {
		if !bytes.Equal(prev, record) {
			return Entry{}, false, fmt.Errorf("provenance: %s exists with different bytes (hash collision or tamper)", path)
		}
	} else if err := os.WriteFile(path, record, 0o644); err != nil {
		return Entry{}, false, fmt.Errorf("provenance: %w", err)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return Entry{}, false, err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, entriesFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Entry{}, false, fmt.Errorf("provenance: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return Entry{}, false, fmt.Errorf("provenance: appending entry: %w", werr)
	}
	l.entries = append(l.entries, e)
	l.leaves = append(l.leaves, leaf)
	l.byKey[key] = e.Seq
	l.dirty = true
	return e, true, nil
}

// Sync publishes the current head: the Merkle root over every entry,
// chained to the previously synced root. It is a no-op when nothing was
// appended since the last Sync, so re-running an already-recorded sweep
// leaves every ledger byte untouched.
func (l *Ledger) Sync() (Head, error) {
	if !l.dirty && l.head.Size == len(l.entries) && l.head.Root != "" {
		return l.head, nil
	}
	head := Head{
		SchemaVersion: LedgerSchemaVersion,
		Size:          len(l.entries),
		Root:          l.Root().String(),
		PrevRoot:      l.head.Root,
	}
	if head.PrevRoot == head.Root {
		// Re-synced with no growth: keep the existing chain link.
		head.PrevRoot = l.head.PrevRoot
	}
	b, err := json.Marshal(head)
	if err != nil {
		return Head{}, err
	}
	b = append(b, '\n')
	path := filepath.Join(l.dir, headFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return Head{}, fmt.Errorf("provenance: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return Head{}, fmt.Errorf("provenance: %w", err)
	}
	l.head = head
	l.dirty = false
	return head, nil
}

// Head returns the last synced head (zero if never synced).
func (l *Ledger) Head() Head { return l.head }

// Prove returns the inclusion proof of entry seq against the current
// tree, usable with VerifyInclusion and the current root.
func (l *Ledger) Prove(seq int) (Proof, error) {
	return Prove(l.leaves, seq)
}

// Verify re-reads the ledger from disk and checks every byte of it:
//
//   - entries.ndjson parses, seqs are contiguous from 0, keys unique;
//   - every entry's record file exists and hashes to the entry's leaf;
//   - the Merkle root over the leaves equals HEAD.json's root, and the
//     head's size equals the entry count;
//   - every entry's inclusion proof verifies against that root.
//
// Any flipped bit in a record, an entry line or the head fails loudly
// with the offending seq/key/file. Verify uses only the on-disk state,
// never this Ledger's in-memory copy, so it is what `mirza-sweep verify`
// runs against a ledger produced by anyone.
func (l *Ledger) Verify() error {
	entries, err := readEntries(filepath.Join(l.dir, entriesFile))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("provenance: %s: empty ledger (no entries)", l.dir)
	}
	leaves := make([]Hash, len(entries))
	keys := make(map[string]bool, len(entries))
	for i, e := range entries {
		if e.Seq != i {
			return fmt.Errorf("provenance: %s: entry %d has seq %d (reordered or truncated entries)", l.dir, i, e.Seq)
		}
		if keys[e.Key] {
			return fmt.Errorf("provenance: %s: key %s recorded twice", l.dir, e.Key)
		}
		keys[e.Key] = true
		want, err := ParseHash(e.Leaf)
		if err != nil {
			return fmt.Errorf("provenance: %s: entry %d: %w", l.dir, i, err)
		}
		record, err := os.ReadFile(l.manifestPath(e.Leaf))
		if err != nil {
			return fmt.Errorf("provenance: %s: entry %d (%s): record missing: %w", l.dir, i, e.Key, err)
		}
		if got := LeafHash(record); got != want {
			return fmt.Errorf("provenance: %s: entry %d (%s): record bytes hash to %s, entry says %s — record was modified",
				l.dir, i, e.Key, got, want)
		}
		leaves[i] = want
	}
	head, err := readHead(filepath.Join(l.dir, headFile))
	if err != nil {
		return err
	}
	if head.SchemaVersion != LedgerSchemaVersion {
		return fmt.Errorf("provenance: %s: head schema %d, want %d", l.dir, head.SchemaVersion, LedgerSchemaVersion)
	}
	if head.Size != len(entries) {
		return fmt.Errorf("provenance: %s: head records %d entries, ledger has %d — entries were added or removed without a Sync",
			l.dir, head.Size, len(entries))
	}
	root := Root(leaves)
	if head.Root != root.String() {
		return fmt.Errorf("provenance: %s: recomputed root %s does not match head root %s — ledger was modified",
			l.dir, root, head.Root)
	}
	for i := range leaves {
		proof, err := Prove(leaves, i)
		if err != nil {
			return err
		}
		if err := VerifyInclusion(root, leaves[i], i, len(leaves), proof); err != nil {
			return fmt.Errorf("provenance: %s: entry %d: %w", l.dir, i, err)
		}
	}
	return nil
}

// readEntries loads the entry log (empty slice when the file does not
// exist yet).
func readEntries(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	defer f.Close()
	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("provenance: %s: line %d: %w", path, lineNo, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: %s: %w", path, err)
	}
	return entries, nil
}

// readHead loads HEAD.json.
func readHead(path string) (Head, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Head{}, fmt.Errorf("provenance: %s: %w", path, os.ErrNotExist)
		}
		return Head{}, fmt.Errorf("provenance: %w", err)
	}
	var h Head
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return Head{}, fmt.Errorf("provenance: %s: %w", path, err)
	}
	return h, nil
}

// Keys returns every recorded key, sorted (for listings and error
// messages; entry order is Entries).
func (l *Ledger) Keys() []string {
	out := make([]string, 0, len(l.byKey))
	for k := range l.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
