package provenance

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func leavesFor(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("record-%d", i)))
	}
	return leaves
}

func TestEmptyTreeRoot(t *testing.T) {
	want := Hash(sha256.Sum256(nil))
	if got := Root(nil); got != want {
		t.Fatalf("empty root = %s, want sha256 of empty string %s", got, want)
	}
}

func TestLeafAndNodeDomainSeparation(t *testing.T) {
	// A single-leaf tree's root is the leaf hash, which must differ from
	// the plain sha256 of the record (0x00 prefix) — otherwise a record
	// could be forged to look like an interior node.
	record := []byte("payload")
	leaf := LeafHash(record)
	if plain := Hash(sha256.Sum256(record)); leaf == plain {
		t.Fatalf("leaf hash equals unprefixed sha256; domain separation lost")
	}
	if got := Root([]Hash{leaf}); got != leaf {
		t.Fatalf("single-leaf root = %s, want the leaf %s", got, leaf)
	}
}

func TestSplitPoint(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 4, 7: 4, 8: 4, 9: 8, 100: 64}
	for n, want := range cases {
		if got := splitPoint(n); got != want {
			t.Errorf("splitPoint(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRFC6962Structure(t *testing.T) {
	// Spot-check the tree shape for n=3 against the spec:
	// MTH(d0..d2) = node(node(leaf0, leaf1), leaf2).
	l := leavesFor(3)
	want := nodeHash(nodeHash(l[0], l[1]), l[2])
	if got := Root(l); got != want {
		t.Fatalf("3-leaf root does not match RFC 6962 structure")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	for n := 1; n <= 9; n++ {
		leaves := leavesFor(n)
		root := Root(leaves)
		for m := 0; m < n; m++ {
			proof, err := Prove(leaves, m)
			if err != nil {
				t.Fatalf("n=%d m=%d: Prove: %v", n, m, err)
			}
			if err := VerifyInclusion(root, leaves[m], m, n, proof); err != nil {
				t.Fatalf("n=%d m=%d: VerifyInclusion: %v", n, m, err)
			}
		}
	}
}

func TestVerifyInclusionRejectsTamper(t *testing.T) {
	leaves := leavesFor(6)
	root := Root(leaves)
	proof, err := Prove(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}

	if err := VerifyInclusion(root, LeafHash([]byte("forged")), 2, 6, proof); err == nil {
		t.Fatal("verified a forged leaf")
	}
	if err := VerifyInclusion(root, leaves[2], 3, 6, proof); err == nil {
		t.Fatal("verified with the wrong index")
	}
	bad := append(Proof(nil), proof...)
	bad[0][0] ^= 0x01
	if err := VerifyInclusion(root, leaves[2], 2, 6, bad); err == nil {
		t.Fatal("verified with a corrupted audit path")
	}
	if err := VerifyInclusion(root, leaves[2], 2, 6, proof[:len(proof)-1]); err == nil {
		t.Fatal("verified with a truncated proof")
	}
	if err := VerifyInclusion(root, leaves[2], 2, 6, append(append(Proof(nil), proof...), leaves[0])); err == nil {
		t.Fatal("verified with an over-long proof")
	}
	otherRoot := Root(leavesFor(7))
	if err := VerifyInclusion(otherRoot, leaves[2], 2, 6, proof); err == nil {
		t.Fatal("verified against a different tree's root")
	}
}

func TestProveOutOfRange(t *testing.T) {
	leaves := leavesFor(3)
	if _, err := Prove(leaves, -1); err == nil {
		t.Fatal("Prove(-1) succeeded")
	}
	if _, err := Prove(leaves, 3); err == nil {
		t.Fatal("Prove(len) succeeded")
	}
	if err := VerifyInclusion(Root(leaves), leaves[0], 0, 0, nil); err == nil {
		t.Fatal("inclusion in empty tree verified")
	}
}

func TestParseHashRoundTrip(t *testing.T) {
	h := LeafHash([]byte("x"))
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("round trip failed: %v", err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("parsed junk hex")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("parsed short hash")
	}
}
