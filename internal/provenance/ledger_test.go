package provenance

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, l *Ledger, record []byte, key, shard string) Entry {
	t.Helper()
	e, added, err := l.Append(record, key, shard)
	if err != nil {
		t.Fatalf("Append(%s): %v", key, err)
	}
	if !added {
		t.Fatalf("Append(%s): expected a fresh entry", key)
	}
	return e
}

func buildLedger(t *testing.T, dir string, n int) *Ledger {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, l, []byte(fmt.Sprintf("{\"run\":%d}\n", i)),
			fmt.Sprintf("cfg%02d-%d", i, i), fmt.Sprintf("exp/seed=%d", i))
	}
	if _, err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerAppendVerify(t *testing.T) {
	dir := t.TempDir()
	l := buildLedger(t, dir, 5)
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify on a clean ledger: %v", err)
	}
	e, ok := l.Lookup("cfg03-3")
	if !ok || e.Seq != 3 {
		t.Fatalf("Lookup cfg03-3 = %+v, %v", e, ok)
	}
	rec, err := l.Record(3)
	if err != nil || string(rec) != "{\"run\":3}\n" {
		t.Fatalf("Record(3) = %q, %v", rec, err)
	}
	proof, err := l.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := ParseHash(e.Leaf)
	if err := VerifyInclusion(l.Root(), leaf, 3, l.Len(), proof); err != nil {
		t.Fatalf("inclusion proof from ledger: %v", err)
	}
}

func TestLedgerReopenIsStable(t *testing.T) {
	dir := t.TempDir()
	l := buildLedger(t, dir, 4)
	rootBefore := l.Root()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 4 || l2.Root() != rootBefore {
		t.Fatalf("reopen: len=%d root=%s, want 4/%s", l2.Len(), l2.Root(), rootBefore)
	}
	if l2.Head().Root != rootBefore.String() {
		t.Fatalf("reopened head root %s != %s", l2.Head().Root, rootBefore)
	}
	// Sync with no growth must leave the head file byte-identical.
	before, err := os.ReadFile(filepath.Join(dir, headFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, headFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("no-op Sync rewrote HEAD.json:\n%s\nvs\n%s", before, after)
	}
}

func TestLedgerDedupAndConflict(t *testing.T) {
	dir := t.TempDir()
	l := buildLedger(t, dir, 2)

	// Same key + same bytes: dedup, no new entry.
	e, added, err := l.Append([]byte("{\"run\":1}\n"), "cfg01-1", "exp/seed=1")
	if err != nil || added || e.Seq != 1 {
		t.Fatalf("dedup append = %+v added=%v err=%v", e, added, err)
	}
	if l.Len() != 2 {
		t.Fatalf("dedup grew the ledger to %d", l.Len())
	}
	// Same key + different bytes: refused.
	if _, _, err := l.Append([]byte("{\"run\":999}\n"), "cfg01-1", "exp/seed=1"); err == nil {
		t.Fatal("ledger rewrote history for an existing key")
	} else if !strings.Contains(err.Error(), "append-only") {
		t.Fatalf("conflict error %q does not explain append-only", err)
	}
}

func TestLedgerHeadChaining(t *testing.T) {
	dir := t.TempDir()
	l := buildLedger(t, dir, 2)
	root1 := l.Head().Root

	mustAppend(t, l, []byte("three\n"), "cfg03-0", "exp/seed=0")
	head, err := l.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if head.PrevRoot != root1 {
		t.Fatalf("head.PrevRoot = %s, want previous root %s", head.PrevRoot, root1)
	}
	if head.Size != 3 || head.Root == root1 {
		t.Fatalf("head after growth: %+v", head)
	}
}

// TestLedgerVerifyDetectsTamper is the negative test the sweep gate
// relies on: a single flipped byte anywhere in the ledger must fail
// Verify loudly.
func TestLedgerVerifyDetectsTamper(t *testing.T) {
	flipByte := func(t *testing.T, path string) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the JSON payload (not a newline).
		i := len(b) / 2
		b[i] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("manifest-byte", func(t *testing.T) {
		dir := t.TempDir()
		l := buildLedger(t, dir, 4)
		flipByte(t, l.manifestPath(l.Entries()[2].Leaf))
		err := l.Verify()
		if err == nil {
			t.Fatal("Verify accepted a tampered manifest")
		}
		if !strings.Contains(err.Error(), "entry 2") {
			t.Fatalf("tamper error %q does not name the entry", err)
		}
	})

	t.Run("entry-line", func(t *testing.T) {
		dir := t.TempDir()
		l := buildLedger(t, dir, 4)
		path := filepath.Join(dir, entriesFile)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Point entry 1 at entry 0's leaf: entries parse, but the root no
		// longer matches the head.
		lines := bytes.Split(b, []byte("\n"))
		lines[1] = bytes.Replace(lines[1], []byte(l.Entries()[1].Leaf), []byte(l.Entries()[0].Leaf), 1)
		if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := l.Verify(); err == nil {
			t.Fatal("Verify accepted a rewritten entry line")
		}
	})

	t.Run("truncated-entries", func(t *testing.T) {
		dir := t.TempDir()
		l := buildLedger(t, dir, 4)
		path := filepath.Join(dir, entriesFile)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(b, []byte("\n"))
		if err := os.WriteFile(path, bytes.Join(lines[:3], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := l.Verify(); err == nil {
			t.Fatal("Verify accepted a truncated entry log")
		}
	})

	t.Run("head-root", func(t *testing.T) {
		dir := t.TempDir()
		l := buildLedger(t, dir, 4)
		path := filepath.Join(dir, headFile)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		root := l.Head().Root
		flipped := root[:len(root)-1] + map[bool]string{true: "0", false: "1"}[root[len(root)-1] != '0']
		if err := os.WriteFile(path, bytes.Replace(b, []byte(root), []byte(flipped), 1), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := l.Verify(); err == nil {
			t.Fatal("Verify accepted a rewritten head root")
		}
	})

	t.Run("missing-manifest", func(t *testing.T) {
		dir := t.TempDir()
		l := buildLedger(t, dir, 4)
		if err := os.Remove(l.manifestPath(l.Entries()[1].Leaf)); err != nil {
			t.Fatal(err)
		}
		if err := l.Verify(); err == nil {
			t.Fatal("Verify accepted a ledger with a missing record")
		}
	})
}

func TestOpenRejectsCorruptLog(t *testing.T) {
	dir := t.TempDir()
	buildLedger(t, dir, 2)
	path := filepath.Join(dir, entriesFile)
	// Duplicate the last line: duplicate key + non-contiguous seq.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if err := os.WriteFile(path, append(b, lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a log with a duplicated entry")
	}
}
