package dram

import "fmt"

// Geometry describes the organization of the memory system, following the
// baseline configuration in Table III of the paper: 32GB of DDR5 organized
// as 1 channel x 2 sub-channels x 1 rank x 32 banks, with 128K rows of 4KB
// per bank, and subarrays of 1024 rows (128 subarrays per bank).
type Geometry struct {
	SubChannels        int // independent sub-channels per channel
	BanksPerSubChannel int // banks per sub-channel
	RowsPerBank        int // rows in each bank
	RowBytes           int // bytes per row (page size of the DRAM row)
	LineBytes          int // cache-line size
	MOPLines           int // consecutive lines per row segment (MOP4 => 4)
	SubarrayRows       int // rows per subarray (region granularity)
	RowsPerREF         int // physical rows refreshed by one REF command
}

// Default returns the Table III baseline geometry.
func Default() Geometry {
	return Geometry{
		SubChannels:        2,
		BanksPerSubChannel: 32,
		RowsPerBank:        128 * 1024,
		RowBytes:           4096,
		LineBytes:          64,
		MOPLines:           4,
		SubarrayRows:       1024,
		RowsPerREF:         16,
	}
}

// Validate reports an error if the geometry is inconsistent.
func (g Geometry) Validate() error {
	switch {
	case g.SubChannels <= 0 || g.BanksPerSubChannel <= 0 || g.RowsPerBank <= 0:
		return fmt.Errorf("dram: geometry dimensions must be positive: %+v", g)
	case g.RowBytes%g.LineBytes != 0:
		return fmt.Errorf("dram: row size %d not a multiple of line size %d", g.RowBytes, g.LineBytes)
	case g.RowsPerBank%g.SubarrayRows != 0:
		return fmt.Errorf("dram: rows per bank %d not a multiple of subarray rows %d", g.RowsPerBank, g.SubarrayRows)
	case g.SubarrayRows%g.RowsPerREF != 0:
		return fmt.Errorf("dram: subarray rows %d not a multiple of rows per REF %d", g.SubarrayRows, g.RowsPerREF)
	case g.LinesPerRow()%g.MOPLines != 0:
		return fmt.Errorf("dram: lines per row %d not a multiple of MOP group %d", g.LinesPerRow(), g.MOPLines)
	}
	return nil
}

// LinesPerRow returns the number of cache lines per DRAM row.
func (g Geometry) LinesPerRow() int { return g.RowBytes / g.LineBytes }

// Banks returns the total number of banks across all sub-channels.
func (g Geometry) Banks() int { return g.SubChannels * g.BanksPerSubChannel }

// Subarrays returns the number of subarrays per bank.
func (g Geometry) Subarrays() int { return g.RowsPerBank / g.SubarrayRows }

// CapacityBytes returns the total channel capacity in bytes.
func (g Geometry) CapacityBytes() uint64 {
	return uint64(g.Banks()) * uint64(g.RowsPerBank) * uint64(g.RowBytes)
}

// REFsPerSubarray returns how many REF commands it takes to refresh one
// full subarray (64 for the defaults).
func (g Geometry) REFsPerSubarray() int { return g.SubarrayRows / g.RowsPerREF }

// REFsPerWindow returns how many REF commands refresh the whole bank
// (8192 for the defaults, matching tREFW/tREFI).
func (g Geometry) REFsPerWindow() int { return g.RowsPerBank / g.RowsPerREF }

// Address identifies one cache line's location in the channel.
type Address struct {
	SubChannel int
	Bank       int // bank index within the sub-channel
	Row        int // row index within the bank
	Col        int // line index within the row
}

// FlatBank returns a dense bank identifier across sub-channels, in
// [0, Banks()).
func (g Geometry) FlatBank(a Address) int {
	return a.SubChannel*g.BanksPerSubChannel + a.Bank
}

// Decompose maps a physical line-aligned byte address to its DRAM location
// using the Minimalist Open Page (MOP4) layout of Table III: consecutive
// physical lines fill a 4-line group within a row, then stripe across
// sub-channels and banks, then across the 16 MOP groups of the row, and
// finally across rows. This spreads a 4KB OS page over all banks while
// keeping 4-line bursts in an open row, which is what makes MOP the
// best-performing policy for the baseline.
func (g Geometry) Decompose(phys uint64) Address {
	line := phys / uint64(g.LineBytes)

	colLow := int(line % uint64(g.MOPLines))
	line /= uint64(g.MOPLines)

	sc := int(line % uint64(g.SubChannels))
	line /= uint64(g.SubChannels)

	bank := int(line % uint64(g.BanksPerSubChannel))
	line /= uint64(g.BanksPerSubChannel)

	mopGroups := g.LinesPerRow() / g.MOPLines
	colHigh := int(line % uint64(mopGroups))
	line /= uint64(mopGroups)

	row := int(line % uint64(g.RowsPerBank))

	return Address{
		SubChannel: sc,
		Bank:       bank,
		Row:        row,
		Col:        colHigh*g.MOPLines + colLow,
	}
}

// Compose is the inverse of Decompose: it maps a DRAM location back to a
// physical byte address (line-aligned).
func (g Geometry) Compose(a Address) uint64 {
	mopGroups := g.LinesPerRow() / g.MOPLines
	colHigh := a.Col / g.MOPLines
	colLow := a.Col % g.MOPLines

	line := uint64(a.Row)
	line = line*uint64(mopGroups) + uint64(colHigh)
	line = line*uint64(g.BanksPerSubChannel) + uint64(a.Bank)
	line = line*uint64(g.SubChannels) + uint64(a.SubChannel)
	line = line*uint64(g.MOPLines) + uint64(colLow)
	return line * uint64(g.LineBytes)
}

// R2SAMapping selects how logical row addresses are assigned to physical
// subarrays (Section IV.D of the paper).
type R2SAMapping int

const (
	// SequentialR2SA maps consecutive logical rows to the same subarray:
	// subarray = row / SubarrayRows. Spatially local accesses concentrate
	// on few subarrays, which defeats coarse-grained filtering (Table VI).
	SequentialR2SA R2SAMapping = iota
	// StridedR2SA maps consecutive logical rows to different subarrays:
	// subarray = row mod Subarrays, so every 128th row shares a subarray.
	// This spreads benign activations over all subarrays and is MIRZA's
	// proposed mapping.
	StridedR2SA
)

// String implements fmt.Stringer.
func (m R2SAMapping) String() string {
	switch m {
	case SequentialR2SA:
		return "sequential"
	case StridedR2SA:
		return "strided"
	default:
		return fmt.Sprintf("R2SAMapping(%d)", int(m))
	}
}

// Subarray returns the physical subarray holding logical row under mapping m.
func (g Geometry) Subarray(m R2SAMapping, row int) int {
	switch m {
	case StridedR2SA:
		return row % g.Subarrays()
	default:
		return row / g.SubarrayRows
	}
}

// PhysicalIndex returns the physical position of logical row within its
// subarray (0..SubarrayRows-1). Physically adjacent indices are Rowhammer
// neighbors; the aggressor at index i disturbs victims at i-1 and i+1 (and,
// at half strength, i-2 and i+2).
func (g Geometry) PhysicalIndex(m R2SAMapping, row int) int {
	switch m {
	case StridedR2SA:
		return row / g.Subarrays()
	default:
		return row % g.SubarrayRows
	}
}

// RowAt is the inverse of (Subarray, PhysicalIndex): it returns the logical
// row sitting at physical position idx of subarray sa under mapping m.
func (g Geometry) RowAt(m R2SAMapping, sa, idx int) int {
	switch m {
	case StridedR2SA:
		return idx*g.Subarrays() + sa
	default:
		return sa*g.SubarrayRows + idx
	}
}

// PhysicalNeighbors returns the logical rows physically adjacent to row at
// distance dist (1 or 2) on both sides, clipped at subarray boundaries.
// These are the victim rows refreshed when row is mitigated.
func (g Geometry) PhysicalNeighbors(m R2SAMapping, row, dist int) []int {
	sa := g.Subarray(m, row)
	idx := g.PhysicalIndex(m, row)
	var out []int
	if idx-dist >= 0 {
		out = append(out, g.RowAt(m, sa, idx-dist))
	}
	if idx+dist < g.SubarrayRows {
		out = append(out, g.RowAt(m, sa, idx+dist))
	}
	return out
}

// RefreshTarget describes the physical rows refreshed by the k-th REF of a
// refresh window: REF commands walk the bank one subarray at a time,
// RowsPerREF physical rows per REF (Appendix B).
type RefreshTarget struct {
	Subarray  int  // subarray being refreshed
	FirstIdx  int  // first physical index refreshed (inclusive)
	LastIdx   int  // last physical index refreshed (inclusive)
	FirstOfSA bool // true if this REF begins the subarray
	LastOfSA  bool // true if this REF completes the subarray
}

// RefreshTargetOf returns the refresh target of REF number k (mod the
// refresh window).
func (g Geometry) RefreshTargetOf(k int) RefreshTarget {
	k %= g.REFsPerWindow()
	perSA := g.REFsPerSubarray()
	sa := k / perSA
	step := k % perSA
	return RefreshTarget{
		Subarray:  sa,
		FirstIdx:  step * g.RowsPerREF,
		LastIdx:   step*g.RowsPerREF + g.RowsPerREF - 1,
		FirstOfSA: step == 0,
		LastOfSA:  step == perSA-1,
	}
}
