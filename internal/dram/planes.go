package dram

import "math/bits"

// This file provides the flat per-bank state containers the memory
// controller's command path is built on: TimePlane, one timing quantity
// for every bank of a sub-channel as a contiguous slice, and BankSet, a
// bit set over bank indices. Splitting the controller's bank state into
// planes (struct-of-arrays) keeps each scheduling scan — "earliest
// act-ready bank", "raise every bank to the REF end" — inside one or two
// cache lines instead of striding a struct per bank, and BankSet replaces
// per-bank boolean scratch arrays whose clearing cost scaled with the
// geometry.

// TimePlane is one per-bank timing quantity (ready-at, idle-at, ...) for
// all banks of a sub-channel, indexed by bank.
type TimePlane []Time

// NewTimePlane returns a plane of n lanes, all zero.
func NewTimePlane(n int) TimePlane { return make(TimePlane, n) }

// Raise lifts lane i to at least t (monotone update; a lane never moves
// backwards through Raise).
func (p TimePlane) Raise(i int, t Time) {
	if p[i] < t {
		p[i] = t
	}
}

// RaiseAll lifts every lane to at least t (the REF/ALERT "all banks busy
// until" update).
func (p TimePlane) RaiseAll(t Time) {
	for i, v := range p {
		if v < t {
			p[i] = t
		}
	}
}

// Fill sets every lane to t.
func (p TimePlane) Fill(t Time) {
	for i := range p {
		p[i] = t
	}
}

// Max returns the largest lane value (zero for an empty plane).
func (p TimePlane) Max() Time {
	var m Time
	for _, v := range p {
		if v > m {
			m = v
		}
	}
	return m
}

// BankSet is a bit set over bank indices [0, n). The zero value is unusable;
// construct with NewBankSet. Clearing the whole set costs one word write
// per 64 banks, which is what makes it cheap enough to rebuild per
// scheduling pass.
type BankSet struct {
	words []uint64
	n     int
}

// NewBankSet returns an empty set over [0, n).
func NewBankSet(n int) BankSet {
	return BankSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the index bound the set was constructed with.
func (s BankSet) Len() int { return s.n }

// Set adds i to the set.
func (s BankSet) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (s BankSet) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether i is in the set.
func (s BankSet) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset removes every element.
func (s BankSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// None reports whether the set is empty.
func (s BankSet) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements in the set.
func (s BankSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// NextFrom returns the smallest element >= i, or -1 when no such element
// exists. It is the break-capable iteration primitive:
//
//	for b := s.NextFrom(0); b >= 0; b = s.NextFrom(b + 1) { ... }
func (s BankSet) NextFrom(i int) int {
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63) << (uint(i) & 63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi == len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// Words exposes the backing bit words (64 banks per word, bank i at word
// i>>6 bit i&63) for callers that iterate a set inside a measured hot
// loop, where even an inlined NextFrom re-scan per element shows up.
// Callers must not grow or shrink the slice; mutating bits through it is
// equivalent to Set/Clear.
func (s BankSet) Words() []uint64 { return s.words }

// ForEach calls fn for every element in ascending order. fn must not
// mutate the set for elements it has not yet been called with; clearing
// the current or an already-visited element is safe (each word is read
// once, before its bits are dispatched).
func (s BankSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
