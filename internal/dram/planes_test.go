package dram

import "testing"

func TestTimePlane(t *testing.T) {
	p := NewTimePlane(4)
	p.Raise(1, 100)
	p.Raise(1, 50) // monotone: never moves backwards
	if p[1] != 100 {
		t.Errorf("Raise: lane 1 = %v, want 100", p[1])
	}
	p.Raise(3, 70)
	if got := p.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	p.RaiseAll(80)
	want := TimePlane{80, 100, 80, 80}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("RaiseAll: plane = %v, want %v", p, want)
		}
	}
	p.Fill(5)
	for i := range p {
		if p[i] != 5 {
			t.Fatalf("Fill: plane = %v", p)
		}
	}
	if got := NewTimePlane(0).Max(); got != 0 {
		t.Errorf("empty Max = %v", got)
	}
}

func TestBankSet(t *testing.T) {
	// 130 banks spans three words, exercising the word math at both
	// boundaries.
	s := NewBankSet(130)
	if !s.None() || s.Count() != 0 || s.Len() != 130 {
		t.Fatal("fresh set not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
	}
	if s.None() || s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Test(1) || s.Test(65) || s.Test(128) {
		t.Error("unset bits report set")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 64, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want ascending %v", got, want)
		}
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 4 {
		t.Error("Clear failed")
	}
	// NextFrom walks the same elements with break capability.
	got = got[:0]
	for i := s.NextFrom(0); i >= 0; i = s.NextFrom(i + 1) {
		got = append(got, i)
	}
	want = []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("NextFrom walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextFrom walk = %v, want %v", got, want)
		}
	}
	if s.NextFrom(130) != -1 || s.NextFrom(129) != 129 || s.NextFrom(128) != 129 {
		t.Error("NextFrom boundary behavior wrong")
	}
	// Clearing the current element from inside ForEach is safe.
	s.ForEach(func(i int) { s.Clear(i) })
	if !s.None() {
		t.Error("self-clearing ForEach left elements")
	}
	s.Set(129)
	s.Reset()
	if !s.None() {
		t.Error("Reset left elements")
	}
}
