// Package dram models a DDR5 memory device at the timing level: geometry
// (channels, banks, rows), the JEDEC timing parameters from Table I of the
// MIRZA paper (including the PRAC overlay), per-bank state machines, the
// refresh sequence, and the ALERT-Back-Off (ABO) protocol constants.
//
// All times are int64 picoseconds (type Time). Picoseconds keep every DDR5
// parameter an exact integer (DDR5-6000 has a 333.3ps clock, so nanoseconds
// would not divide evenly) while still giving ~106 days of simulated time
// headroom in an int64.
package dram

import "fmt"

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Nanoseconds returns t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Milliseconds returns t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Timing holds the DRAM timing parameters used by the simulator. The
// defaults follow Table I of the paper (DDR5 specs for 6000AN) plus the
// ALERT/mitigation constants from Sections II.F-II.G.
type Timing struct {
	TRCD Time // time for performing ACT (activate-to-read)
	TRP  Time // time to precharge an open row
	TRAS Time // minimum time between activate and precharge
	TRC  Time // time between successive ACTs to the same bank
	TRRD Time // activate-to-activate, different banks (bus-level pacing)
	TFAW Time // four-activation window (per subchannel)

	TREFW Time // refresh window: every row refreshed once per TREFW
	TREFI Time // interval between REF commands
	TRFC  Time // execution time of a REF command
	TRFM  Time // execution time of an RFM command

	TCL  Time // CAS latency (read command to first data)
	TBUS Time // data-bus occupancy of one 64B transfer
	TWR  Time // write recovery time
	TRTP Time // read-to-precharge

	// TMitigation is the time to mitigate one aggressor row (refresh its
	// victim rows) via bounded refresh, 280ns per the paper.
	TMitigation Time

	// ABOPrologue is the window after ALERT assertion during which the
	// memory controller may keep operating normally (180ns).
	ABOPrologue Time
	// ABOStall is the period during which the DRAM is unavailable after
	// the prologue (350ns). Total ALERT latency is prologue+stall = 530ns.
	ABOStall Time
}

// ALERTLatency returns the end-to-end latency of one ALERT (530ns for the
// default parameters).
func (t Timing) ALERTLatency() Time { return t.ABOPrologue + t.ABOStall }

// DDR5 returns the baseline DDR5-6000AN timing set from Table I.
func DDR5() Timing {
	return Timing{
		TRCD: 14 * Nanosecond,
		TRP:  14 * Nanosecond,
		TRAS: 32 * Nanosecond,
		TRC:  46 * Nanosecond,
		TRRD: 3 * Nanosecond,
		TFAW: 13 * Nanosecond,

		TREFW: 32 * Millisecond,
		TREFI: 3900 * Nanosecond,
		TRFC:  410 * Nanosecond,
		TRFM:  350 * Nanosecond,

		TCL:  14 * Nanosecond,
		TBUS: 5333 * Picosecond, // 64B = 16 beats on a 32-bit sub-channel at 6000 MT/s
		TWR:  30 * Nanosecond,
		TRTP: 12 * Nanosecond,

		TMitigation: 280 * Nanosecond,
		ABOPrologue: 180 * Nanosecond,
		ABOStall:    350 * Nanosecond,
	}
}

// PRAC returns the DDR5 timing set with the PRAC overlay from Table I:
// the per-row activation counter update inflates tRP from 14ns to 36ns and
// restructures the row cycle (tRAS 32ns -> 16ns, tRC 46ns -> 52ns). These
// inflated timings apply whenever PRAC mode is enabled, even if ALERT is
// never asserted, and are the source of PRAC's ~6.5% average slowdown.
func PRAC() Timing {
	t := DDR5()
	t.TRP = 36 * Nanosecond
	t.TRAS = 16 * Nanosecond
	t.TRC = 52 * Nanosecond
	return t
}

// Validate reports an error if the timing set is internally inconsistent.
// The protocol auditor (internal/audit) enforces these parameters against
// the simulated command stream and assumes they passed Validate, so the
// checks here are the first line of defense against a malformed custom
// timing set silently corrupting every downstream figure.
func (t Timing) Validate() error {
	switch {
	case t.TRCD <= 0 || t.TRP <= 0 || t.TRAS <= 0 || t.TRC <= 0:
		return fmt.Errorf("dram: core timings must be positive: %+v", t)
	case t.TRRD <= 0 || t.TFAW <= 0:
		return fmt.Errorf("dram: ACT pacing timings must be positive (tRRD=%v tFAW=%v)", t.TRRD, t.TFAW)
	case t.TFAW < t.TRRD:
		return fmt.Errorf("dram: tFAW (%v) < tRRD (%v): the four-ACT window cannot be shorter than one ACT-to-ACT gap", t.TFAW, t.TRRD)
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%v) < tRCD (%v): a row would close before its first column command could issue", t.TRAS, t.TRCD)
	case t.TRC < t.TRAS:
		return fmt.Errorf("dram: tRC (%v) < tRAS (%v)", t.TRC, t.TRAS)
	case t.TCL <= 0 || t.TBUS <= 0 || t.TWR <= 0 || t.TRTP <= 0:
		return fmt.Errorf("dram: column timings must be positive (tCL=%v tBUS=%v tWR=%v tRTP=%v)", t.TCL, t.TBUS, t.TWR, t.TRTP)
	case t.TRTP > t.TRAS:
		return fmt.Errorf("dram: tRTP (%v) > tRAS (%v)", t.TRTP, t.TRAS)
	case t.TRFC <= 0 || t.TRFM <= 0:
		return fmt.Errorf("dram: refresh timings must be positive (tRFC=%v tRFM=%v)", t.TRFC, t.TRFM)
	case t.TREFI <= t.TRFC:
		return fmt.Errorf("dram: tREFI (%v) must exceed tRFC (%v)", t.TREFI, t.TRFC)
	case t.TREFW < t.TREFI:
		return fmt.Errorf("dram: tREFW (%v) < tREFI (%v)", t.TREFW, t.TREFI)
	case t.ABOPrologue < 0 || t.ABOStall < 0:
		return fmt.Errorf("dram: ABO timings must be non-negative")
	}
	// tREFW must divide into a whole number of REF intervals — to within
	// 0.1% of the window. The tolerance absorbs the Table I rounding (32ms
	// at tREFI=3.9us leaves a 500ns remainder, 0.0016% of the window) while
	// rejecting custom sets whose refresh accounting would be nonsense
	// (e.g. tREFI=7ms in a 32ms window: 4.57 REFs).
	if rem := t.TREFW % t.TREFI; rem > t.TREFW/1000 {
		return fmt.Errorf("dram: tREFW (%v) is not a whole number of tREFI (%v) intervals (remainder %v)",
			t.TREFW, t.TREFI, rem)
	}
	return nil
}

// REFsPerTREFW returns the number of REF commands issued in one refresh
// window (tREFW / tREFI), 8192 for the default parameters.
func (t Timing) REFsPerTREFW() int {
	return int(t.TREFW / t.TREFI)
}

// MaxACTsPerTREFI returns the maximum number of activations a single bank
// can receive between two REF commands: (tREFI - tRFC) / tRC. This is the
// window size W available to a tracker that mitigates once per REF
// (75 for the default parameters, as used by MINT in Section II.F).
func (t Timing) MaxACTsPerTREFI() int {
	return int((t.TREFI - t.TRFC) / t.TRC)
}

// MaxACTsPerBankPerTREFW returns the maximum activations one bank can
// absorb in a full refresh window, accounting for REF downtime (~621K for
// the default parameters, the worst-case bound of Figure 6).
func (t Timing) MaxACTsPerBankPerTREFW() int {
	return t.MaxACTsPerTREFI() * t.REFsPerTREFW()
}

// MaxACTsPerChannelPerTREFW returns the tFAW-limited maximum number of
// activations a channel can perform in one refresh window (~8.8M for
// 13ns tFAW: four activations per tFAW window).
func (t Timing) MaxACTsPerChannelPerTREFW() int {
	return int(t.TREFW / t.TFAW * 4)
}
