package dram

import "fmt"

// AddressMapping selects how physical addresses spread over the channel's
// banks and rows. The paper's baseline is Minimalist Open Page with 4 lines
// per row visit (MOP4, Table III); the alternatives exist for the ablation
// bench that justifies that choice.
type AddressMapping int

const (
	// MOP4Mapping is the default: 4 consecutive lines per row visit, then
	// stripe across sub-channels and banks (Kaseridis et al., MICRO'11).
	MOP4Mapping AddressMapping = iota
	// LineInterleaved stripes every single line across sub-channels and
	// banks: maximal bank parallelism, minimal row-buffer locality.
	LineInterleaved
	// RowInterleaved keeps a whole DRAM row's worth of lines consecutive
	// before switching banks: maximal locality, minimal parallelism (an
	// open-page policy's best friend and a bank conflict's worst enemy).
	RowInterleaved
)

// String implements fmt.Stringer.
func (m AddressMapping) String() string {
	switch m {
	case MOP4Mapping:
		return "mop4"
	case LineInterleaved:
		return "line-interleaved"
	case RowInterleaved:
		return "row-interleaved"
	default:
		return fmt.Sprintf("AddressMapping(%d)", int(m))
	}
}

// DecomposeWith maps a physical line-aligned byte address to its DRAM
// location under the chosen mapping. MOP4Mapping matches Decompose.
func (g Geometry) DecomposeWith(m AddressMapping, phys uint64) Address {
	group := g.MOPLines
	switch m {
	case LineInterleaved:
		group = 1
	case RowInterleaved:
		group = g.LinesPerRow()
	}
	line := phys / uint64(g.LineBytes)

	colLow := int(line % uint64(group))
	line /= uint64(group)

	sc := int(line % uint64(g.SubChannels))
	line /= uint64(g.SubChannels)

	bank := int(line % uint64(g.BanksPerSubChannel))
	line /= uint64(g.BanksPerSubChannel)

	groups := g.LinesPerRow() / group
	colHigh := int(line % uint64(groups))
	line /= uint64(groups)

	row := int(line % uint64(g.RowsPerBank))
	return Address{
		SubChannel: sc,
		Bank:       bank,
		Row:        row,
		Col:        colHigh*group + colLow,
	}
}

// ComposeWith is the inverse of DecomposeWith.
func (g Geometry) ComposeWith(m AddressMapping, a Address) uint64 {
	group := g.MOPLines
	switch m {
	case LineInterleaved:
		group = 1
	case RowInterleaved:
		group = g.LinesPerRow()
	}
	groups := g.LinesPerRow() / group
	colHigh := a.Col / group
	colLow := a.Col % group

	line := uint64(a.Row)
	line = line*uint64(groups) + uint64(colHigh)
	line = line*uint64(g.BanksPerSubChannel) + uint64(a.Bank)
	line = line*uint64(g.SubChannels) + uint64(a.SubChannel)
	line = line*uint64(group) + uint64(colLow)
	return line * uint64(g.LineBytes)
}
