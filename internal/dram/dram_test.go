package dram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDDR5Timings(t *testing.T) {
	tm := DDR5()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I values.
	cases := []struct {
		name string
		got  Time
		want Time
	}{
		{"tRCD", tm.TRCD, 14 * Nanosecond},
		{"tRP", tm.TRP, 14 * Nanosecond},
		{"tRAS", tm.TRAS, 32 * Nanosecond},
		{"tRC", tm.TRC, 46 * Nanosecond},
		{"tREFW", tm.TREFW, 32 * Millisecond},
		{"tREFI", tm.TREFI, 3900 * Nanosecond},
		{"tRFC", tm.TRFC, 410 * Nanosecond},
		{"tWR", tm.TWR, 30 * Nanosecond},
		{"tRTP", tm.TRTP, 12 * Nanosecond},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestPRACTimingOverlay(t *testing.T) {
	tm := PRAC()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.TRP != 36*Nanosecond {
		t.Errorf("PRAC tRP = %v, want 36ns", tm.TRP)
	}
	if tm.TRAS != 16*Nanosecond {
		t.Errorf("PRAC tRAS = %v, want 16ns", tm.TRAS)
	}
	if tm.TRC != 52*Nanosecond {
		t.Errorf("PRAC tRC = %v, want 52ns", tm.TRC)
	}
	// Non-overlaid parameters unchanged.
	if tm.TREFI != DDR5().TREFI || tm.TRFC != DDR5().TRFC {
		t.Error("PRAC overlay must not change refresh timings")
	}
}

// TestTimingValidate exercises every rejection case of Timing.Validate —
// the auditor assumes a validated timing set, so each inconsistency a user
// could plausibly construct must be refused with an error naming the
// parameters involved.
func TestTimingValidate(t *testing.T) {
	mutate := func(f func(*Timing)) Timing {
		tm := DDR5()
		f(&tm)
		return tm
	}
	cases := []struct {
		name    string
		timing  Timing
		wantErr string // "" = must validate
	}{
		{"ddr5-defaults", DDR5(), ""},
		{"prac-overlay", PRAC(), ""},
		{"zero-trcd", mutate(func(tm *Timing) { tm.TRCD = 0 }), "core timings"},
		{"negative-trp", mutate(func(tm *Timing) { tm.TRP = -Nanosecond }), "core timings"},
		{"zero-trrd", mutate(func(tm *Timing) { tm.TRRD = 0 }), "ACT pacing"},
		{"zero-tfaw", mutate(func(tm *Timing) { tm.TFAW = 0 }), "ACT pacing"},
		{"tfaw-below-trrd", mutate(func(tm *Timing) { tm.TFAW = tm.TRRD - 1 }), "tFAW"},
		{"tras-below-trcd", mutate(func(tm *Timing) { tm.TRAS = tm.TRCD - 1 }), "tRAS"},
		{"trc-below-tras", mutate(func(tm *Timing) { tm.TRC = tm.TRAS - 1 }), "tRC"},
		{"zero-tcl", mutate(func(tm *Timing) { tm.TCL = 0 }), "column timings"},
		{"zero-trtp", mutate(func(tm *Timing) { tm.TRTP = 0 }), "column timings"},
		{"trtp-above-tras", mutate(func(tm *Timing) { tm.TRTP = tm.TRAS + 1 }), "tRTP"},
		{"zero-trfc", mutate(func(tm *Timing) { tm.TRFC = 0 }), "refresh timings"},
		{"trefi-below-trfc", mutate(func(tm *Timing) { tm.TREFI = tm.TRFC }), "tREFI"},
		{"trefw-below-trefi", mutate(func(tm *Timing) { tm.TREFW = tm.TREFI - 1 }), "tREFW"},
		{"negative-abo", mutate(func(tm *Timing) { tm.ABOStall = -1 }), "ABO"},
		// 32ms / 7ms = 4.57 REF intervals: refresh accounting nonsense.
		{"fractional-ref-count", mutate(func(tm *Timing) { tm.TREFI = 7 * Millisecond }), "whole number"},
		// The Table I remainder (32ms % 3.9us = 500ns) must stay inside the
		// 0.1%-of-window tolerance; a tREFI that exactly divides must too.
		{"exact-ref-count", mutate(func(tm *Timing) { tm.TREFI = 4 * Millisecond }), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.timing.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

func TestDerivedTimingQuantities(t *testing.T) {
	tm := DDR5()
	if got := tm.REFsPerTREFW(); got != 8205 && got != 8192 {
		// 32ms / 3.9us = 8205 REF slots; the canonical DDR5 figure is 8192.
		t.Errorf("REFsPerTREFW = %d", got)
	}
	if got := tm.MaxACTsPerTREFI(); got != 75 {
		t.Errorf("MaxACTsPerTREFI = %d, want 75 (Section II.F)", got)
	}
	// Worst case per bank per tREFW: ~621K (Figure 6).
	if got := tm.MaxACTsPerBankPerTREFW(); got < 590_000 || got > 640_000 {
		t.Errorf("MaxACTsPerBankPerTREFW = %d, want ~621K", got)
	}
	// tFAW-limited channel budget: ~8.8M/tREFW (footnote 2).
	if got := tm.MaxACTsPerChannelPerTREFW(); got < 8_000_000 || got > 10_500_000 {
		t.Errorf("MaxACTsPerChannelPerTREFW = %d, want ~8.8-9.8M", got)
	}
	if tm.ALERTLatency() != 530*Nanosecond {
		t.Errorf("ALERT latency = %v, want 530ns", tm.ALERTLatency())
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Banks() != 64 {
		t.Errorf("Banks = %d, want 64 (32 x 2 sub-channels)", g.Banks())
	}
	if g.Subarrays() != 128 {
		t.Errorf("Subarrays = %d, want 128", g.Subarrays())
	}
	if g.CapacityBytes() != 32<<30 {
		t.Errorf("Capacity = %d, want 32GB", g.CapacityBytes())
	}
	if g.REFsPerSubarray() != 64 {
		t.Errorf("REFsPerSubarray = %d, want 64 (Appendix B)", g.REFsPerSubarray())
	}
	if g.REFsPerWindow() != 8192 {
		t.Errorf("REFsPerWindow = %d, want 8192", g.REFsPerWindow())
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	g := Default()
	f := func(raw uint64) bool {
		phys := raw % g.CapacityBytes()
		phys -= phys % uint64(g.LineBytes)
		a := g.Decompose(phys)
		if a.SubChannel < 0 || a.SubChannel >= g.SubChannels ||
			a.Bank < 0 || a.Bank >= g.BanksPerSubChannel ||
			a.Row < 0 || a.Row >= g.RowsPerBank ||
			a.Col < 0 || a.Col >= g.LinesPerRow() {
			return false
		}
		return g.Compose(a) == phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMOP4Layout(t *testing.T) {
	g := Default()
	// Four consecutive lines share a row-buffer visit (same sub-channel,
	// bank, row), per the MOP4 policy.
	base := g.Decompose(0)
	for i := 1; i < 4; i++ {
		a := g.Decompose(uint64(i * g.LineBytes))
		if a.SubChannel != base.SubChannel || a.Bank != base.Bank || a.Row != base.Row {
			t.Fatalf("line %d left the MOP group: %+v vs %+v", i, a, base)
		}
		if a.Col != base.Col+i {
			t.Fatalf("line %d col = %d, want %d", i, a.Col, base.Col+i)
		}
	}
	// The fifth line moves to the other sub-channel.
	a := g.Decompose(uint64(4 * g.LineBytes))
	if a.SubChannel == base.SubChannel {
		t.Errorf("line 4 should change sub-channel: %+v", a)
	}
}

func TestRowToSubarrayMappings(t *testing.T) {
	g := Default()
	// Sequential: consecutive rows share a subarray.
	if g.Subarray(SequentialR2SA, 0) != g.Subarray(SequentialR2SA, 1) {
		t.Error("sequential mapping should keep consecutive rows together")
	}
	if g.Subarray(SequentialR2SA, 1023) != 0 || g.Subarray(SequentialR2SA, 1024) != 1 {
		t.Error("sequential subarray boundary wrong")
	}
	// Strided: consecutive rows land in different subarrays; every 128th
	// row shares one (Section IV.D).
	if g.Subarray(StridedR2SA, 0) == g.Subarray(StridedR2SA, 1) {
		t.Error("strided mapping should separate consecutive rows")
	}
	if g.Subarray(StridedR2SA, 0) != g.Subarray(StridedR2SA, 128) {
		t.Error("strided mapping: rows 0 and 128 should share a subarray")
	}
}

func TestRowAtInverse(t *testing.T) {
	g := Default()
	for _, m := range []R2SAMapping{SequentialR2SA, StridedR2SA} {
		for _, row := range []int{0, 1, 127, 128, 1023, 1024, 131071, 70000} {
			sa := g.Subarray(m, row)
			idx := g.PhysicalIndex(m, row)
			if got := g.RowAt(m, sa, idx); got != row {
				t.Errorf("%v: RowAt(Subarray, PhysicalIndex) of %d = %d", m, row, got)
			}
		}
	}
}

func TestPhysicalNeighbors(t *testing.T) {
	g := Default()
	// Interior row has two neighbors at each distance.
	row := g.RowAt(StridedR2SA, 5, 100)
	n1 := g.PhysicalNeighbors(StridedR2SA, row, 1)
	if len(n1) != 2 {
		t.Fatalf("interior row: %d neighbors, want 2", len(n1))
	}
	for _, n := range n1 {
		if g.Subarray(StridedR2SA, n) != 5 {
			t.Errorf("neighbor %d escaped the subarray", n)
		}
		d := g.PhysicalIndex(StridedR2SA, n) - 100
		if d != 1 && d != -1 {
			t.Errorf("neighbor at distance %d, want +/-1", d)
		}
	}
	// Edge row (index 0) has one neighbor.
	edge := g.RowAt(StridedR2SA, 5, 0)
	if n := g.PhysicalNeighbors(StridedR2SA, edge, 1); len(n) != 1 {
		t.Errorf("edge row: %d neighbors, want 1", len(n))
	}
}

func TestRefreshTargetWalk(t *testing.T) {
	g := Default()
	// The full window of REFs must cover every physical row exactly once.
	seen := make(map[[2]int]bool)
	for k := 0; k < g.REFsPerWindow(); k++ {
		tgt := g.RefreshTargetOf(k)
		if tgt.Subarray < 0 || tgt.Subarray >= g.Subarrays() {
			t.Fatalf("REF %d: subarray %d out of range", k, tgt.Subarray)
		}
		for idx := tgt.FirstIdx; idx <= tgt.LastIdx; idx++ {
			key := [2]int{tgt.Subarray, idx}
			if seen[key] {
				t.Fatalf("REF %d refreshes (%d,%d) twice", k, tgt.Subarray, idx)
			}
			seen[key] = true
		}
	}
	if len(seen) != g.RowsPerBank {
		t.Fatalf("refresh walk covered %d rows, want %d", len(seen), g.RowsPerBank)
	}
	// Boundary flags.
	first := g.RefreshTargetOf(0)
	if !first.FirstOfSA || first.LastOfSA {
		t.Errorf("REF 0 flags wrong: %+v", first)
	}
	last := g.RefreshTargetOf(g.REFsPerSubarray() - 1)
	if !last.LastOfSA || last.FirstOfSA {
		t.Errorf("last REF of subarray flags wrong: %+v", last)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:  "500ps",
		14 * Nanosecond:   "14.000ns",
		32 * Millisecond:  "32.000ms",
		3900 * Nanosecond: "3.900us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}
