package dram

import (
	"testing"
	"testing/quick"
)

func TestDecomposeWithRoundTrip(t *testing.T) {
	g := Default()
	for _, m := range []AddressMapping{MOP4Mapping, LineInterleaved, RowInterleaved} {
		m := m
		f := func(raw uint64) bool {
			phys := raw % g.CapacityBytes()
			phys -= phys % uint64(g.LineBytes)
			a := g.DecomposeWith(m, phys)
			return g.ComposeWith(m, a) == phys &&
				a.Row >= 0 && a.Row < g.RowsPerBank &&
				a.Col >= 0 && a.Col < g.LinesPerRow()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestMappingLocalityCharacter(t *testing.T) {
	g := Default()
	sameRowRun := func(m AddressMapping) int {
		base := g.DecomposeWith(m, 0)
		run := 1
		for i := 1; i < g.LinesPerRow()*4; i++ {
			a := g.DecomposeWith(m, uint64(i*g.LineBytes))
			if a.SubChannel == base.SubChannel && a.Bank == base.Bank && a.Row == base.Row {
				run++
			} else {
				break
			}
		}
		return run
	}
	if got := sameRowRun(MOP4Mapping); got != 4 {
		t.Errorf("MOP4 run = %d, want 4", got)
	}
	if got := sameRowRun(LineInterleaved); got != 1 {
		t.Errorf("line-interleaved run = %d, want 1", got)
	}
	if got := sameRowRun(RowInterleaved); got != g.LinesPerRow() {
		t.Errorf("row-interleaved run = %d, want %d", got, g.LinesPerRow())
	}
}

func TestMOP4MatchesDefaultDecompose(t *testing.T) {
	g := Default()
	f := func(raw uint64) bool {
		phys := raw % g.CapacityBytes()
		phys -= phys % uint64(g.LineBytes)
		return g.DecomposeWith(MOP4Mapping, phys) == g.Decompose(phys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMappingStrings(t *testing.T) {
	if MOP4Mapping.String() != "mop4" || LineInterleaved.String() != "line-interleaved" {
		t.Error("mapping names wrong")
	}
}
