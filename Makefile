# Developer entry points. `make check` is the CI gate: vet + build + the
# race-enabled test suite at short fidelity (full-fidelity experiment paths
# are exercised by `make test`).

GO ?= go

# Short-fidelity preset: tiny timing windows and a single workload so the
# race-enabled sweep finishes in CI time (see DefaultOptions in
# internal/experiments for the variables). MIRZA_PARALLELISM=4 runs the
# experiment job engine with four workers so the race detector watches the
# parallel path, not just -j 1.
SHORT_ENV = MIRZA_MEASURE_MS=0.2 MIRZA_WARMUP_MS=0.1 MIRZA_REPLAY_WINDOWS=2 MIRZA_WORKLOADS=xz MIRZA_PARALLELISM=4

.PHONY: check vet build test test-race test-telemetry serve-check trace-check sweep-check audit conformance bench bench-smoke bench-mem clean

check: vet build test-race test-telemetry

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(SHORT_ENV) $(GO) test -race -short ./...

# The telemetry and job-pool suites at full fidelity under the race
# detector: these cover the only registry writes that happen live during
# a parallel run (pool gauges, per-REF histogram observes).
test-telemetry:
	$(GO) test -race ./internal/telemetry/ ./internal/jobs/

# Daemon gate: the serve robustness suites (chaos/soak, backpressure,
# coalescing, drain) and the cliflags suite under the race detector, then
# the scripted end-to-end smoke test — start mirza-serve, run the same
# tiny fig3 twice, assert the second is a byte-identical cache hit, and
# SIGTERM-drain cleanly (see DESIGN.md section 13).
serve-check:
	$(GO) test -race ./internal/serve/ ./internal/cliflags/
	./scripts/serve-smoke.sh

# Trace/tenant gate: the trace-ingestion frontend and multi-tenant
# scenario suites under the race detector, then the scripted golden
# check — the example traces replayed twice and at different worker
# counts, plus the tracereplay/intervm experiment tables at -j 1 vs
# -j 4, must all be byte-identical (see DESIGN.md section 15).
trace-check:
	$(GO) test -race -count=1 ./internal/tracefile/ ./internal/tenant/
	./scripts/trace-check.sh

# Sweep/provenance gate: the sweep-engine and Merkle-ledger suites under
# the race detector (process-level determinism, SIGKILL retry, cache
# reuse, inclusion proofs, tamper detection), then the scripted
# end-to-end check — a 2-worker grid vs a 1-worker rerun must produce
# byte-identical ledgers, `mirza-sweep verify` must prove every entry,
# and flipping one recorded manifest byte must fail verification (see
# DESIGN.md section 17).
sweep-check:
	$(GO) test -race -count=1 ./internal/sweep/ ./internal/provenance/
	./scripts/sweep-check.sh

# Protocol-audit gate: the auditor's unit and property suites (synthetic
# violations, adversarial traffic, the disabled-tFAW canary), then a quick
# fig3 run with -audit so every command the real experiment pipeline issues
# is checked against the DDR5 invariants (see internal/audit, DESIGN.md
# section 12). A violation fails the run with the offending command history.
audit:
	$(GO) test ./internal/audit/
	$(GO) run ./cmd/mirza-bench -quick -exp fig3 -audit -j 4

# Mitigation-conformance gate: every policy registered with the track
# registry runs the full generic battery under the race detector — the
# attack-pattern security sweep against each policy's analytic bound,
# fault-injection robustness (no panics, deterministic replay), stats/
# telemetry counter sanity, and a short audited full-system run (see
# internal/track/conformance, DESIGN.md section 14). A violation prints
# as "policy [check]: detail" and fails the run.
conformance:
	$(GO) test -race -count=1 ./internal/track/conformance/

bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE ./...

# Scheduler hot-path benchmarks with the regression gates: the new
# reusable-event kernel must stay allocation-free and >= 1.5x over the
# preserved legacy container/heap baseline. Results land in
# BENCH_kernel.json (checked in; CI uploads each run's copy as an
# artifact).
bench-smoke:
	$(GO) test -short -run=TestScheduleEventAllocFree -bench=BenchmarkKernel -benchmem ./internal/sim/ \
		| $(GO) run ./cmd/benchjson -out BENCH_kernel.json

# Memory command-path benchmarks with the same gates as bench-smoke: the
# redesigned SubChannel path must stay allocation-free in steady state and
# >= 1.5x over the preserved pre-redesign baseline on every pairing, both
# for the full fig3 system (BenchmarkFig3) and for recorded fig3 request
# streams replayed straight into the channel (BenchmarkFig3MemPath).
# Results land in BENCH_mem.json (checked in; CI uploads each run's copy).
bench-mem:
	$(GO) test -run=TestFig3SteadyStateAllocFree -bench=BenchmarkFig3 -benchmem ./internal/mem/ \
		| $(GO) run ./cmd/benchjson -out BENCH_mem.json

clean:
	$(GO) clean ./...
