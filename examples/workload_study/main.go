// Workload study: run one of the paper's workloads end-to-end on the
// full-system simulator — 8 trace-driven cores over a DDR5 channel — under
// the unprotected baseline, MIRZA, and PRAC+ABO, and compare IPC, bus
// utilisation, ALERT activity and refresh-power overhead. This is the
// Figure 11 measurement for a single workload, at example scale.
//
//	go run ./examples/workload_study -workload fotonik3d -ms 1
package main

import (
	"flag"
	"fmt"

	"mirza/internal/core"
	"mirza/internal/cpu"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/trace"
	"mirza/internal/track"
)

func main() {
	workload := flag.String("workload", "fotonik3d", "Table IV workload name")
	ms := flag.Float64("ms", 1.0, "measured milliseconds (after 0.25ms warmup)")
	flag.Parse()

	spec, err := trace.Lookup(*workload)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload %s: MPKI %.1f, ACT-PKI %.1f, %d MB/core footprint\n\n",
		spec.Name, spec.MPKI, spec.ACTPKI, spec.FootprintMB)

	type result struct {
		name    string
		ipc     float64
		bus     float64
		alerts  int64
		victims int64
		demand  int64
	}
	run := func(name string, timing dram.Timing, factory func(sub int, sink track.Sink) track.Mitigator) result {
		gens, err := trace.PerCore(spec, 8, 1)
		if err != nil {
			panic(err)
		}
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Core: cpu.CoreConfig{MSHR: spec.MLPLimit()},
			Mem: mem.Config{
				Timing:       timing,
				Mapping:      dram.StridedR2SA,
				NewMitigator: factory,
			},
		}, gens)
		if err != nil {
			panic(err)
		}
		warm := dram.Millisecond / 4
		sys.Run(warm)
		sys.Snapshot()
		sys.Run(warm + dram.Time(*ms*float64(dram.Millisecond)))
		var ipc float64
		for _, v := range sys.IPCs() {
			ipc += v
		}
		st := sys.MemStats()
		return result{name, ipc / 8, sys.BusUtilization(), st.Alerts, st.VictimRows, st.DemandRefreshRows}
	}

	baseline := run("unprotected", dram.DDR5(), nil)
	mirza := run("MIRZA (TRHD=1K)", dram.DDR5(), func(sub int, sink track.Sink) track.Mitigator {
		cfg, _ := core.ForTRHD(1000)
		cfg.Seed = uint64(sub)
		return core.MustNew(cfg, sink)
	})
	prac := run("PRAC+ABO", dram.PRAC(), func(sub int, sink track.Sink) track.Mitigator {
		return track.NewPRAC(track.PRACConfig{
			Geometry: dram.Default(), Mapping: dram.StridedR2SA,
			AlertThreshold: track.ATHForTRHD(1000),
		}, sink)
	})

	fmt.Printf("%-16s %8s %10s %9s %8s %13s\n",
		"configuration", "IPC/core", "slowdown", "bus util", "ALERTs", "refresh power")
	for _, r := range []result{baseline, mirza, prac} {
		slow := 100 * (1 - r.ipc/baseline.ipc)
		rp := 0.0
		if r.demand > 0 {
			rp = 100 * float64(r.victims) / float64(r.demand)
		}
		fmt.Printf("%-16s %8.3f %9.2f%% %8.1f%% %8d %12.2f%%\n",
			r.name, r.ipc, slow, r.bus, r.alerts, rp)
	}
	fmt.Println("\n(PRAC's slowdown comes from its inflated tRP/tRC even with zero ALERTs;")
	fmt.Println(" MIRZA keeps baseline timings and alerts only when filtering is escaped.)")
}
