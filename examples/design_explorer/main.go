// Design explorer: sweep MIRZA's design space analytically. For a target
// Rowhammer threshold, the security model (Section VI) couples the filter
// threshold FTH to the MINT window W; this example walks the trade-off
// curve — filtering effectiveness versus ALERT frequency versus SRAM — the
// way Table IX does, and prints the area comparison against PRAC and
// counter trackers.
//
//	go run ./examples/design_explorer -trhd 1000
package main

import (
	"flag"
	"fmt"

	"mirza/internal/areamodel"
	"mirza/internal/attack"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/energy"
	"mirza/internal/security"
)

func main() {
	trhd := flag.Int("trhd", 1000, "target double-sided Rowhammer threshold")
	flag.Parse()

	model := security.DefaultMINTModel()
	pm := attack.NewPerfAttackModel(dram.DDR5())

	fmt.Printf("MIRZA design space for TRHD=%d\n\n", *trhd)
	fmt.Printf("%-7s %-6s %-10s %-12s %-14s %-12s\n",
		"MINT-W", "FTH", "SRAM/bank", "SafeTRHD", "worst attack", "MINT budget")
	base, err := core.ForTRHD(*trhd)
	if err != nil {
		base, _ = core.ForTRHD(1000)
		base.TargetTRHD = *trhd
	}
	for _, w := range []int{4, 8, 12, 16, 24} {
		fth := security.FTHForTRHD(*trhd, w, base.QueueSize, base.QTH, model)
		if fth <= 0 {
			fmt.Printf("%-7d (window too large: MINT alone exceeds the threshold budget)\n", w)
			continue
		}
		cfg := base
		cfg.MINTWindow = w
		cfg.FTH = fth
		fmt.Printf("%-7d %-6d %-10d %-12d %-14s %-12d\n",
			w, fth, cfg.SRAMBytesPerBank(), security.SafeTRHD(cfg, model),
			fmt.Sprintf("%.2fx", pm.Slowdown(w)), model.ToleratedTRHD(w))
	}

	fmt.Println("\nhow the threshold budget splits (Section VI.B):")
	fmt.Printf("  TRHD > FTH/2 + MINT_TRHD(W) + QTH + ABO_ACTS\n")
	cfg := base
	fmt.Printf("  %d  > %d   + %d          + %d  + %d\n",
		*trhd, cfg.FTH/2, model.ToleratedTRHD(cfg.MINTWindow), cfg.QTH,
		security.ABOActs(cfg.QueueSize))

	fmt.Println("\narea against the alternatives:")
	bits := areamodel.CounterBits(cfg.FTH+1) * maxi(1, cfg.Regions/cfg.Geometry.Subarrays())
	cmp := areamodel.CompareSubarray(*trhd, bits, cfg.Geometry.SubarrayRows)
	fmt.Printf("  PRAC    : %d DRAM bits/subarray -> %.1fx MIRZA's area\n",
		cmp.PRACDRAMBits, cmp.AreaRatio)
	fmt.Printf("  Mithril : %d bytes/bank (2K entries) vs MIRZA %d bytes/bank\n",
		areamodel.MithrilBytesPerBank(2048), cfg.SRAMBytesPerBank())

	fmt.Println("\nproactive-mitigation cost MIRZA avoids (Table II):")
	tm := dram.DDR5()
	for _, refs := range []int{1, 4, 8} {
		w := security.WindowPerREFs(tm, refs)
		fmt.Printf("  1 mitigation per %d REF: tolerates TRHD %d, cannibalizes %.1f%% of REF time\n",
			refs, model.ToleratedTRHD(w), 100*energy.Cannibalization(tm, float64(refs)))
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
