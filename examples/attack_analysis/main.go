// Attack analysis: evaluate MIRZA's security bound empirically. For each
// Table VII configuration, run the strongest attack patterns at full DRAM
// speed for two refresh windows and compare the worst observed exposure
// against the analytic SafeTRHD bound of Section VI — then show what
// happens to an unprotected device under the same pattern.
//
//	go run ./examples/attack_analysis
package main

import (
	"fmt"

	"mirza/internal/attack"
	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/security"
	"mirza/internal/track"
)

func main() {
	g := dram.Default()
	mapping := dram.StridedR2SA
	model := security.DefaultMINTModel()

	fmt.Println("MIRZA under worst-case patterns (2 refresh windows each):")
	fmt.Printf("%-6s %-14s %10s %10s %8s %9s\n",
		"TRHD", "pattern", "maxDS", "bound", "alerts", "verdict")
	for _, trhd := range []int{500, 1000, 2000} {
		cfg, err := core.ForTRHD(trhd)
		if err != nil {
			panic(err)
		}
		bound := security.SafeTRHD(cfg, model)
		patterns := []attack.Pattern{
			attack.DoubleSided(g, mapping, 3, 500),
			attack.Circular(g, mapping, 5, 48),
			attack.Feinting(g, mapping, 7, cfg.QueueSize),
		}
		for _, pat := range patterns {
			sim := attack.NewBankSim(attack.BankSimConfig{
				Geometry: g, Timing: dram.DDR5(), Mapping: mapping, Bank: 0,
				NewMitigator: func(sink track.Sink) track.Mitigator {
					c := cfg
					c.Seed = 42
					return core.MustNew(c, sink)
				},
			})
			res := sim.RunWindows(pat, 2)
			verdict := "SECURE"
			if res.MaxDoubleSided >= bound {
				verdict = "BROKEN"
			}
			fmt.Printf("%-6d %-14s %10d %10d %8d %9s\n",
				trhd, pat.Name(), res.MaxDoubleSided, bound, res.Alerts, verdict)
		}
	}

	// The same double-sided pattern against an unprotected device shows
	// what is at stake.
	sim := attack.NewBankSim(attack.BankSimConfig{
		Geometry: g, Timing: dram.DDR5(), Mapping: mapping, Bank: 0,
		NewMitigator: func(sink track.Sink) track.Mitigator { return track.NewNop() },
	})
	res := sim.RunWindows(attack.DoubleSided(g, mapping, 3, 500), 1)
	fmt.Printf("\nunprotected device, double-sided, one window: %d unmitigated ACTs\n",
		res.MaxDoubleSided)
	fmt.Println("(any threshold below that flips bits; MIRZA caps it near its bound)")

	// Performance attacks: the cost of MIRZA's worst case (Section IX).
	pm := attack.NewPerfAttackModel(dram.DDR5())
	fmt.Println("\nperformance attack (Figure 12 kernel), benign co-runner impact:")
	for _, w := range []int{16, 12, 8} {
		fmt.Printf("  MINT-W=%-3d throughput %.1f%%  slowdown %.2fx\n",
			w, 100*pm.RelativeThroughput(w), pm.Slowdown(w))
	}
}
