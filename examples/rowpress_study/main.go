// RowPress study: exercise the two extension features beyond the paper's
// core. First, RowPress weighting — the threat model (Section II.A) assumes
// row-open time is converted into equivalent activations; this example
// shows a row held open by a hit stream charging the tracker extra
// equivalent ACTs. Second, the MoPAC baseline from the related work: PRAC
// with probabilistic counter updates, trading ALERT-threshold slack for
// baseline-like timings.
//
//	go run ./examples/rowpress_study
package main

import (
	"fmt"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/mem"
	"mirza/internal/sim"
	"mirza/internal/track"
)

func main() {
	fmt.Println("--- RowPress weighting ---")
	for _, weighting := range []bool{false, true} {
		counter := track.NewNop()
		k := &sim.Kernel{}
		ch, err := mem.NewChannel(k, mem.Config{
			RowPressWeighting: weighting,
			NewMitigator: func(sub int, sink track.Sink) track.Mitigator {
				if sub == 0 {
					return counter
				}
				return track.NewNop()
			},
		})
		if err != nil {
			panic(err)
		}
		// 60 queued hits keep one row open for ~16 tRAS before it closes.
		for i := 0; i < 60; i++ {
			addr := ch.Geometry().Compose(dram.Address{Bank: 2, Row: 42, Col: i % 60})
			ch.Submit(&mem.Request{Addr: addr})
		}
		k.RunUntil(20 * dram.Microsecond)
		fmt.Printf("  weighting=%-5v tracker observed %d ACT-equivalents for 1 real ACT\n",
			weighting, counter.Stats.ACTs)
	}
	fmt.Println("  (a long-open row disturbs neighbours like extra activations;")
	fmt.Println("   with weighting on, trackers see and mitigate that pressure)")

	fmt.Println("\n--- MoPAC: probabilistic PRAC counting ---")
	g := dram.Default()
	for _, p := range []float64{1.0, 0.25, 0.125} {
		ath := track.MoPACDeratedATH(1000, p)
		m := track.NewMoPAC(track.MoPACConfig{
			Geometry: g, Mapping: dram.StridedR2SA,
			SampleProb: p, AlertThreshold: ath, Seed: 7,
		}, track.NopSink{})
		acts := 0
		for !m.WantsALERT() && acts < 100000 {
			m.OnActivate(0, 777, 0)
			acts++
		}
		fmt.Printf("  p=%-6.3f derated ATH=%-4d ALERT after %5d ACTs (deterministic budget %d)\n",
			p, ath, acts, track.ATHForTRHD(1000))
	}
	fmt.Println("  (lower sampling keeps PRAC's timings near baseline but burns")
	fmt.Println("   threshold budget as statistical slack — and the per-row DRAM")
	fmt.Println("   counters remain, which is the overhead MIRZA avoids entirely)")

	fmt.Println("\n--- MIRZA for contrast ---")
	cfg, _ := core.ForTRHD(1000)
	fmt.Printf("  MIRZA at the same threshold: %d bytes SRAM/bank, no DRAM-array\n",
		cfg.SRAMBytesPerBank())
	fmt.Println("  counters, no timing inflation, mitigation only on ALERT.")
}
