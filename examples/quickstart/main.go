// Quickstart: build a MIRZA mitigator, feed it an activation stream by
// hand, and watch the three-stage pipeline (RCT filter -> MINT selection ->
// MIRZA-Q + ALERT) do its job.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mirza/internal/core"
	"mirza/internal/dram"
	"mirza/internal/track"
)

func main() {
	// The paper's TRHD=1K configuration: FTH=1500, MINT-W=12, 128 regions,
	// 4-entry queue, QTH=16, strided row-to-subarray mapping (Table VII).
	cfg, err := core.ForTRHD(1000)
	if err != nil {
		panic(err)
	}
	fmt.Println("configuration:", cfg)
	fmt.Printf("SRAM budget  : %d bytes per bank\n\n", cfg.SRAMBytesPerBank())

	// A sink observes mitigations (a real memory controller counts victim
	// refreshes here for the energy model).
	sink := track.FuncSink(func(bank, row, victims int, now dram.Time) {
		fmt.Printf("  -> mitigated row %d of bank %d (%d victim rows refreshed)\n",
			row, bank, victims)
	})
	m := core.MustNew(cfg, sink)

	// Phase A: benign-looking traffic. The whole region absorbs FTH
	// activations before anything escapes filtering.
	g := cfg.Geometry
	row := g.RowAt(cfg.Mapping, 7, 100) // subarray 7, physical index 100
	for i := 0; i < cfg.FTH+1; i++ {
		m.OnActivate(0, row, 0)
	}
	fmt.Printf("after FTH+1 ACTs: filtered=%d escaped=%d (CGF absorbed everything)\n",
		m.Stats.Filtered, m.Stats.Escaped)

	// Phase B/C: the region is now beyond FTH, so further activations
	// participate in MINT's 1-in-W selection and selected rows enter the
	// MIRZA-Q. Hammer a few distinct rows until the device raises ALERT.
	i := 0
	for !m.WantsALERT() {
		m.OnActivate(0, g.RowAt(cfg.Mapping, 7, 100+2*(i%8)), 0)
		i++
	}
	fmt.Printf("after %d more ACTs: selections=%d, queue=%v, ALERT requested\n",
		i, m.Stats.Selections, m.QueueSnapshot(0))

	// Phase D: the memory controller runs the ABO protocol (180ns
	// prologue + 350ns stall) and the device mitigates the most-hammered
	// queue entry.
	fmt.Println("servicing ALERT:")
	m.ServiceALERT(530 * dram.Nanosecond)

	fmt.Printf("\nfinal stats: %+v\n", m.Stats)
	fmt.Printf("escape probability: %.4f (the source of MIRZA's %.0fx mitigation savings)\n",
		m.Stats.EscapeProbability(), 1/m.Stats.MitigationRate()/12)
}
