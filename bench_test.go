// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md section 3 for the index). Each
// benchmark regenerates its experiment through internal/experiments and
// logs the rendered table, so `go test -bench=. -benchmem` both times the
// reproduction and records the measured numbers.
//
// Scale: benchmarks default to a six-workload subset and sub-millisecond
// timing windows so the full suite completes on a laptop. Environment
// variables widen them to paper scale:
//
//	MIRZA_WORKLOADS=""            (empty = all 24 Table IV workloads)
//	MIRZA_MEASURE_MS=1.5 MIRZA_WARMUP_MS=0.5 MIRZA_REPLAY_WINDOWS=3
package mirza_test

import (
	"os"
	"sync"
	"testing"

	"mirza/internal/dram"
	"mirza/internal/experiments"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns the shared Runner so per-workload calibrations and
// baselines amortize across benchmarks.
func benchRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		opts := experiments.DefaultOptions()
		if testing.Short() {
			// Smoke scale: tiny windows, 3-workload subset.
			opts = opts.Quick()
		} else {
			if os.Getenv("MIRZA_MEASURE_MS") == "" {
				opts.Measure = dram.Millisecond / 2
			}
			if os.Getenv("MIRZA_WARMUP_MS") == "" {
				opts.Warmup = dram.Millisecond / 4
			}
			if os.Getenv("MIRZA_WORKLOADS") == "" {
				opts.Workloads = []string{"fotonik3d", "lbm", "mcf", "bc", "xz", "cam4"}
			}
		}
		runner = experiments.NewRunner(opts)
	})
	return runner
}

// staticExperiments need no timing or replay simulation; everything else
// is skipped under -short so `go test -short -bench=.` stays fast.
var staticExperiments = map[string]bool{
	"table1": true, "table2": true, "table7": true,
	"table10": true, "table11": true, "table12": true,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() && !staticExperiments[id] {
		b.Skipf("%s runs full-fidelity simulations; skipped under -short", id)
	}
	exp, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.Render())
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkFig11a(b *testing.B)  { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)  { benchExperiment(b, "fig11b") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkFig13(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }
func BenchmarkFig1c(b *testing.B)   { benchExperiment(b, "fig1c") }

// BenchmarkMINTModelSweep is the DESIGN.md ablation for the MINT security
// model: the tolerated threshold across window sizes.
func BenchmarkMINTModelSweep(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}
