#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the mirza-serve daemon.
#
# Builds the daemon, starts it on an ephemeral port, submits the same
# tiny fig3 job twice, asserts the second submission is served from the
# result cache with byte-identical manifest bytes, and checks that a
# SIGTERM drain exits cleanly (exit 0). Run by `make serve-check` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/mirza-serve"
log="$workdir/serve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT
# An untrapped SIGINT/SIGTERM kills the shell without running the EXIT
# trap, orphaning the daemon; convert them into a normal exit so cleanup
# always reaps it (128+signo keeps the conventional exit code).
trap 'trap - INT; cleanup; exit 130' INT
trap 'trap - TERM; cleanup; exit 143' TERM
trap 'trap - HUP; cleanup; exit 129' HUP

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "---- daemon log ----" >&2
    cat "$log" >&2 || true
    exit 1
}

echo "serve-smoke: building mirza-serve"
go build -o "$bin" ./cmd/mirza-serve

# Port 0 lets the kernel pick a free port; the daemon logs the resolved
# address as "listening on <addr>".
"$bin" -listen 127.0.0.1:0 -workers 2 -v 2>"$log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$log" | head -n1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "daemon never logged its listen address"
echo "serve-smoke: daemon up on $addr (pid $pid)"

body='{"experiment":"fig3","seed":1,"quick":true,"workloads":["xz"],"measure_ms":0.2,"warmup_ms":0.1}'

health=$(curl -fsS "http://$addr/healthz")
echo "$health" | grep -q '"state": "serving"' || fail "healthz does not report serving: $health"

echo "serve-smoke: submitting fig3 (fresh run)"
first=$(curl -fsS -X POST -d "$body" "http://$addr/v1/jobs?wait=1")
echo "$first" | grep -q '"state": "done"' || fail "first submission not done: $first"
echo "$first" | grep -q '"cached": true' && fail "first submission claims cached: $first"
id1=$(echo "$first" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[[ -n "$id1" ]] || fail "no job id in: $first"

echo "serve-smoke: submitting fig3 again (expect cache hit)"
second=$(curl -fsS -X POST -d "$body" "http://$addr/v1/jobs?wait=1")
echo "$second" | grep -q '"state": "done"' || fail "second submission not done: $second"
echo "$second" | grep -q '"cached": true' || fail "second submission was not a cache hit: $second"
id2=$(echo "$second" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)

curl -fsS "http://$addr/v1/jobs/$id1/result" >"$workdir/fresh.json"
curl -fsS "http://$addr/v1/jobs/$id2/result" >"$workdir/cached.json"
cmp -s "$workdir/fresh.json" "$workdir/cached.json" \
    || fail "cached result is not byte-identical to the fresh run"
grep -q '"config_hash"' "$workdir/fresh.json" || fail "result is not a run manifest"

curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
grep -q 'serve_cache_hits_total 1' "$workdir/metrics.txt" \
    || fail "metrics do not show exactly one cache hit"

echo "serve-smoke: SIGTERM drain"
kill -TERM "$pid"
code=0
wait "$pid" || code=$?
pid=""
[[ "$code" -eq 0 ]] || fail "daemon exited $code after SIGTERM, want 0 (clean drain)"
grep -q "drained:" "$log" || fail "daemon log has no drain summary"

echo "serve-smoke: OK (fresh run, cache hit byte-identical, clean drain)"
