#!/usr/bin/env bash
# sweep-check.sh — end-to-end check of the sweep engine and its
# tamper-evident provenance ledger.
#
# Builds mirza-bench and mirza-sweep, runs a tiny table1 grid at
# -workers 2 and again (fresh ledger, no shared cache) at -workers 1,
# asserts the two ledgers are byte-identical file-for-file, verifies
# every Merkle inclusion proof with `mirza-sweep verify`, exercises the
# incremental-rerun cache path, and finally flips one byte of a recorded
# manifest to prove verification fails loudly. Run by `make sweep-check`
# and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
# An untrapped SIGINT/SIGTERM kills the shell without running the EXIT
# trap; convert them into a normal exit so the temp dir is always removed.
trap 'rm -rf "$workdir"; trap - INT; exit 130' INT
trap 'rm -rf "$workdir"; trap - TERM; exit 143' TERM

fail() {
    echo "sweep-check: FAIL: $*" >&2
    exit 1
}

echo "sweep-check: building mirza-bench and mirza-sweep"
go build -o "$workdir/mirza-bench" ./cmd/mirza-bench
go build -o "$workdir/mirza-sweep" ./cmd/mirza-sweep
sweep="$workdir/mirza-sweep"

grid=(-exp table1 -seeds 1-3 -quick -bench "$workdir/mirza-bench")

echo "sweep-check: grid run at -workers 2"
"$sweep" run "${grid[@]}" -ledger "$workdir/a" -workers 2 -table "$workdir/a.md" \
    >"$workdir/run-a.txt" || fail "2-worker sweep failed: $(cat "$workdir/run-a.txt")"

echo "sweep-check: same grid at -workers 1 (fresh ledger, fresh cache)"
"$sweep" run "${grid[@]}" -ledger "$workdir/b" -workers 1 -table "$workdir/b.md" \
    >"$workdir/run-b.txt" || fail "1-worker sweep failed: $(cat "$workdir/run-b.txt")"

# The determinism contract: the ledger — entries, head, every recorded
# manifest — and the rendered table are byte-identical at any -workers.
diff -r --exclude=cache "$workdir/a" "$workdir/b" >/dev/null \
    || fail "-workers 2 ledger differs from -workers 1 (run 'diff -r' on them)"
cmp -s "$workdir/a.md" "$workdir/b.md" \
    || fail "rendered sweep tables differ between worker counts"
grep -q "Ledger root:" "$workdir/a.md" || fail "sweep table lacks the ledger-root footer"

echo "sweep-check: verify (every entry, every inclusion proof)"
"$sweep" verify -ledger "$workdir/a" >"$workdir/verify.txt" \
    || fail "verification of an untampered ledger failed: $(cat "$workdir/verify.txt")"
grep -q "^ok: 3 entries verified" "$workdir/verify.txt" \
    || fail "verify did not report 3 entries: $(cat "$workdir/verify.txt")"

echo "sweep-check: incremental rerun (seeds 1-4: 3 cached, 1 new)"
"$sweep" run -exp table1 -seeds 1-4 -quick -bench "$workdir/mirza-bench" \
    -ledger "$workdir/a" -workers 2 >"$workdir/run-c.txt" \
    || fail "incremental rerun failed: $(cat "$workdir/run-c.txt")"
[[ "$(grep -c '^cached ' "$workdir/run-c.txt")" -eq 3 ]] \
    || fail "incremental rerun did not reuse 3 cached shards: $(cat "$workdir/run-c.txt")"
grep -q "(+1)" "$workdir/run-c.txt" \
    || fail "incremental rerun did not append exactly one entry: $(cat "$workdir/run-c.txt")"
"$sweep" verify -ledger "$workdir/a" >/dev/null || fail "ledger fails verify after the incremental append"

echo "sweep-check: single inclusion proof (prove -seq 2)"
"$sweep" prove -ledger "$workdir/a" -seq 2 >"$workdir/prove.txt" \
    || fail "prove failed: $(cat "$workdir/prove.txt")"
grep -q "proof verifies" "$workdir/prove.txt" || fail "prove output lacks a verified proof"

echo "sweep-check: tamper detection (flip one manifest byte)"
victim=$(ls "$workdir"/a/manifests/*.json | head -n1)
# Overwrite one byte in place (length unchanged): the entry's leaf hash
# no longer matches the recorded bytes, so verify must refuse the ledger.
printf 'X' | dd of="$victim" bs=1 seek=10 conv=notrunc status=none
if "$sweep" verify -ledger "$workdir/a" >"$workdir/tamper.txt" 2>&1; then
    fail "verify accepted a tampered manifest"
fi
grep -q "FAIL" "$workdir/tamper.txt" || fail "tampered verify did not fail loudly: $(cat "$workdir/tamper.txt")"

echo "sweep-check: OK (byte-identical across worker counts, proofs verify, tamper detected)"
