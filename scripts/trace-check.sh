#!/usr/bin/env bash
# trace-check.sh — golden determinism check for the trace-ingestion
# frontend and the multi-tenant scenario layer.
#
# Replays the checked-in example traces (DRAMSim3 and native NDJSON)
# through mirza-sim twice and at -j 1 vs -j 8, and renders the
# tracereplay and intervm experiment tables at -j 1 vs -j 4: every pair
# must be byte-identical — the same recorded file is the same experiment,
# regardless of worker count. Run by `make trace-check` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
# An untrapped SIGINT/SIGTERM kills the shell without running the EXIT
# trap; convert them into a normal exit so the temp dir is always removed.
trap 'rm -rf "$workdir"; trap - INT; exit 130' INT
trap 'rm -rf "$workdir"; trap - TERM; exit 143' TERM

fail() {
    echo "trace-check: FAIL: $*" >&2
    exit 1
}

traces="examples/traces/stream.trace,examples/traces/pointer-chase.ndjson"
bin="$workdir/mirza-sim"

echo "trace-check: building mirza-sim"
go build -o "$bin" ./cmd/mirza-sim

echo "trace-check: replay determinism ($traces)"
"$bin" -trace "$traces" -mitigation prac -ms 0.2 -warmup-ms 0.1 -j 1 >"$workdir/sim1.txt"
"$bin" -trace "$traces" -mitigation prac -ms 0.2 -warmup-ms 0.1 -j 1 >"$workdir/sim2.txt"
"$bin" -trace "$traces" -mitigation prac -ms 0.2 -warmup-ms 0.1 -j 8 >"$workdir/sim3.txt"
cmp -s "$workdir/sim1.txt" "$workdir/sim2.txt" \
    || fail "the same trace files replayed twice did not produce byte-identical reports"
cmp -s "$workdir/sim1.txt" "$workdir/sim3.txt" \
    || fail "-j 8 replay diverged from -j 1"
grep -q "sha256" "$workdir/sim1.txt" || fail "replay report does not pin the trace content hash"

# The "(id took Xs ...)" timing line is wall clock, not part of the
# determinism contract; everything else of the bench output is.
bench() {
    go run ./cmd/mirza-bench -quick -exp "$1" "${@:3}" -j "$2" | grep -v '^('
}

echo "trace-check: tracereplay experiment table, -j 1 vs -j 4"
bench tracereplay 1 -trace "$traces" >"$workdir/rep1.txt"
bench tracereplay 4 -trace "$traces" >"$workdir/rep2.txt"
cmp -s "$workdir/rep1.txt" "$workdir/rep2.txt" \
    || fail "tracereplay table diverged between -j 1 and -j 4"

echo "trace-check: intervm experiment table, -j 1 vs -j 4"
bench intervm 1 >"$workdir/ivm1.txt"
bench intervm 4 >"$workdir/ivm2.txt"
cmp -s "$workdir/ivm1.txt" "$workdir/ivm2.txt" \
    || fail "intervm table diverged between -j 1 and -j 4"
grep -q "xVM flips" "$workdir/ivm1.txt" || fail "intervm table lacks the attribution columns"

echo "trace-check: OK (replays and tables byte-identical across reruns and worker counts)"
