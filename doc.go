// Package mirza is a from-scratch Go reproduction of "MIRZA: Efficiently
// Mitigating Rowhammer with Randomization and ALERT" (HPCA 2026): the MIRZA
// mechanism itself, every baseline it is evaluated against (MINT+RFM,
// PRAC+ABO, Mithril, TRR), and the complete DDR5 memory-system simulation
// substrate the evaluation rests on.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for recorded paper-vs-measured
// results. The runnable entry points are:
//
//	cmd/mirza-sim     - full-system simulation of one workload + mitigation
//	cmd/mirza-attack  - worst-case attack evaluation against any defense
//	cmd/mirza-bench   - regenerate every table and figure of the paper
//	examples/...      - library usage walkthroughs
//	bench_test.go     - testing.B benchmark per table/figure
package mirza
