module mirza

go 1.22
